//! `load_driver` — closed-loop traffic generator and client-side verifier
//! for `c1pd`.
//!
//! ```text
//! load_driver --addr 127.0.0.1:PORT [--requests 500] [--conns 4]
//!             [--seed 1] [--dup-every 3] [--reject-every 4]
//!             [--n-lo 48] [--n-hi 160] [--expect-hits]
//!             [--open-loop] [--idle-conns K] [--expect-metrics]
//!             [--expect-traces]
//! load_driver --addr 127.0.0.1:PORT --dump-metrics
//! load_driver --addr 127.0.0.1:PORT --dump-traces
//! load_driver --addr 127.0.0.1:PORT --mode sessions
//!             [--streams 8] [--pushes 6] [--blocks 4] [--conns 4]
//!             [--seed 1] [--reject-every 3] [--n-lo 64] [--n-hi 192]
//! load_driver --mode crash --server PATH/TO/c1pd --wal-dir DIR
//!             [--cycles 5] [--streams 6] [--pushes 8] [--blocks 4]
//!             [--seed 1] [--reject-every 3] [--n-lo 64] [--n-hi 160]
//!             [--snapshot-ms 50] [--fault-every 2]
//! load_driver --mode chaos --server PATH/TO/c1pd [--wal-dir DIR]
//!             [--shards 2] [--streams 8] [--pushes 6] [--blocks 4]
//!             [--solves 60] [--seed 1] [--reject-every 3]
//!             [--n-lo 64] [--n-hi 160] [--kill-every 6] [--drop-every 5]
//!             [--socket-every 17] [--delay-every 11] [--wal-torn-every 7]
//!             [--deadline-ms 400] [--expect-metrics]
//!             [--trace-sample N] [--slow-ms MS] [--expect-traces]
//! ```
//!
//! **Solve mode** (default) generates a deterministic mixed accept/reject
//! schedule from the shared workload generator
//! (`c1p_matrix::generate::mixed_schedule` — the same definition
//! experiment E11 and the `engine_batch` example use), with every
//! `--dup-every`-th request replaying an earlier instance so the server's
//! cache has something to hit. `--conns` closed-loop connections
//! round-robin the schedule. `--open-loop` switches each connection to
//! pipelining: a writer thread streams its whole share of the schedule
//! without waiting while the reader verifies responses in order — the
//! protocol's in-order guarantee is what makes the pairing sound — so
//! the server's admission and batching face real concurrent depth
//! (latency percentiles are not reported in this mode; throughput is).
//! `--idle-conns K` parks K extra connections that send nothing for the
//! whole run, the event-loop scalability case a thread-per-connection
//! server pays a blocked thread for. `--expect-metrics` fetches the
//! plain-text `GetMetrics` dump afterwards and fails unless every
//! stable series name is present and the load-exercised counters are
//! nonzero. `--dump-metrics` skips the load entirely: it prints the
//! live server's text dump to stdout and exits — the scrape path for
//! shells and dashboards. `--dump-traces` does the same for the server's
//! retained request traces (one JSONL object per line, via `GetTraces`),
//! and `--expect-traces` fails the run unless the server retained at
//! least one trace whose spans cover the whole request lifecycle
//! (decode → admission → queue → mailbox → cache → solve with ≥ 3
//! solver phases → flush); the server must be running with
//! `--trace-sample`. The latency summary is always cross-checked
//! against the server's histogram: bucket counts must be cumulative and
//! their +Inf total must equal `_count`, which must cover every request
//! the driver completed.
//!
//! **Session mode** replays deterministic append streams
//! (`c1p_matrix::generate::append_stream{,_reject}`) through the
//! `OpenSession`/`PushAtoms`/`SealSession` frames: every `--reject-every`-th
//! stream carries one planted Tucker obstruction, whose push must come
//! back rejected (and rolled back server-side) while every other verdict
//! accepts. The client mirrors each session with an incremental
//! Booth–Lueker reducer (`c1p_pqtree::Reducer`) to predict every verdict
//! independently, and gates the sealed order on **bit-identical agreement
//! with an in-process one-shot solve** of the accepted concatenation.
//!
//! **Crash mode** is the durability harness (DESIGN.md §10): the driver
//! spawns `c1pd` itself (`--server` names the binary) on a shared
//! `--wal-dir`, drives session streams part-way, and crashes the server
//! at seeded points — `kill -9` between acknowledged operations on most
//! cycles, and on every `--fault-every`-th cycle a *mid-WAL-append*
//! abort via the server's `--wal-fault-after` hook (the torn record must
//! be truncated, never replayed). Each restart is audited: zero
//! quarantined WALs, every live session recovered, and the first solve
//! of the warm-start probe instance served from the snapshot
//! (`warm_start_hits` ≥ 1). Un-acknowledged pushes are retried — the
//! fsync-before-ack ordering makes that exact, not heuristic — and at
//! the end every stream must seal bit-identically to a one-shot
//! in-process solve of its accepted concatenation.
//!
//! **Chaos mode** is the fault-injection harness (DESIGN.md §12): the
//! driver spawns `c1pd --event-loop` with a seeded fault plan — worker
//! kills, dropped/delayed shard replies, socket faults, torn WAL
//! appends — and drives mixed solve + session traffic at it through the
//! self-healing `c1p_net::client`. The assertions are absolute: every
//! verdict that settles verifies client-side and agrees with the
//! incremental PQ mirror; every sealed order whose reply arrived is
//! bit-identical to a one-shot in-process solve; no operation exceeds
//! its client deadline (a hang is a hard failure); and the server's
//! metrics must show the chaos actually happened — injected faults,
//! at least one supervised shard restart, and session recovery from the
//! WAL within one process lifetime.
//!
//! Every response is checked **client-side, without trusting the server**:
//! accepts must pass `verify_linear` against the concatenated instance,
//! rejects must carry a Tucker certificate that `c1p_cert::verify_witness`
//! confirms; both must agree with the in-process prediction. Exits
//! nonzero on any protocol error, verification failure, verdict
//! disagreement, or (with `--expect-hits`) a zero cache-hit count.

use c1p_cert::{verify_witness, TuckerWitness};
use c1p_engine::proto::{decode_msg, encode_msg, read_frame, write_frame, Msg, DEFAULT_MAX_FRAME};
use c1p_matrix::generate::{append_stream, append_stream_reject, mixed_schedule, MixedSchedule};
use c1p_matrix::io::WireVerdict;
use c1p_matrix::{verify_linear, Atom, Ensemble};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn num_flag(args: &[String], name: &str, default: u64) -> u64 {
    flag(args, name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| panic!("{name} takes a number, got {v:?}"))
    })
}

#[derive(Default)]
struct Tally {
    protocol_errors: AtomicU64,
    verify_failures: AtomicU64,
    disagreements: AtomicU64,
    completed: AtomicU64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flag(&args, "--mode").as_deref() {
        Some("sessions") => return sessions_main(&args),
        Some("crash") => return crash_main(&args),
        Some("chaos") => return chaos_main(&args),
        _ => {}
    }
    let addr = flag(&args, "--addr").expect("--addr HOST:PORT is required");
    if args.iter().any(|a| a == "--dump-metrics") {
        // scrape-and-print: fetch one GetMetrics frame and exit
        match fetch_metrics(&addr) {
            Some(dump) => {
                print!("{dump}");
                return;
            }
            None => {
                eprintln!("FAIL: could not fetch the GetMetrics dump");
                std::process::exit(1);
            }
        }
    }
    if args.iter().any(|a| a == "--dump-traces") {
        // print the server's retained traces as JSONL and exit
        match fetch_traces(&addr) {
            Some(jsonl) => {
                print!("{jsonl}");
                return;
            }
            None => {
                eprintln!("FAIL: could not fetch the GetTraces dump");
                std::process::exit(1);
            }
        }
    }
    let requests = num_flag(&args, "--requests", 500) as usize;
    let conns = (num_flag(&args, "--conns", 4) as usize).max(1);
    let seed = num_flag(&args, "--seed", 1);
    let dup_every = num_flag(&args, "--dup-every", 3) as usize;
    let reject_every = num_flag(&args, "--reject-every", 4) as usize;
    let n_lo = num_flag(&args, "--n-lo", 48) as usize;
    let n_hi = num_flag(&args, "--n-hi", 160) as usize;
    let expect_hits = args.iter().any(|a| a == "--expect-hits");
    let expect_metrics = args.iter().any(|a| a == "--expect-metrics");
    let expect_traces = args.iter().any(|a| a == "--expect-traces");
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let idle_conns = num_flag(&args, "--idle-conns", 0) as usize;

    // deterministic schedule (shared definition: c1p_matrix::generate) +
    // in-process expected verdicts
    let schedule =
        mixed_schedule(MixedSchedule { requests, seed, dup_every, reject_every, n_lo, n_hi });
    let expected: Vec<bool> = schedule.iter().map(|e| c1p_core::solve(e).is_ok()).collect();
    println!(
        "load_driver: {} requests ({} accept / {} reject expected), {} connection(s){}{}, seed {}",
        requests,
        expected.iter().filter(|&&b| b).count(),
        expected.iter().filter(|&&b| !b).count(),
        conns,
        if open_loop { " open-loop" } else { "" },
        if idle_conns > 0 { format!(" + {idle_conns} idle") } else { String::new() },
        seed,
    );

    // idle connections: opened first, held for the whole run, never
    // written to — an event loop carries them for the cost of a pollfd,
    // a thread-per-connection server for a blocked thread each
    let idle: Vec<TcpStream> = (0..idle_conns)
        .map(|i| {
            let s = TcpStream::connect(&addr)
                .unwrap_or_else(|e| panic!("load_driver: idle connection {i}: {e}"));
            s.set_nodelay(true).ok();
            s
        })
        .collect();

    let tally = Arc::new(Tally::default());
    let schedule = Arc::new(schedule);
    let expected = Arc::new(expected);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns {
        let (schedule, expected, tally, addr) =
            (Arc::clone(&schedule), Arc::clone(&expected), Arc::clone(&tally), addr.clone());
        handles.push(std::thread::spawn(move || {
            if open_loop {
                drive_connection_open_loop(c, conns, &addr, &schedule, &expected, &tally)
            } else {
                drive_connection(c, conns, &addr, &schedule, &expected, &tally)
            }
        }));
    }
    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    for h in handles {
        latencies_us.extend(h.join().expect("driver thread panicked"));
    }
    let wall = t0.elapsed();

    // engine-side stats over a fresh connection
    let hits = fetch_stat(&addr, "\"hits\":").unwrap_or(-1);
    let completed = tally.completed.load(Ordering::Relaxed);
    let protocol_errors = tally.protocol_errors.load(Ordering::Relaxed);
    let verify_failures = tally.verify_failures.load(Ordering::Relaxed);
    let disagreements = tally.disagreements.load(Ordering::Relaxed);

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let ix = ((latencies_us.len() - 1) as f64 * p).round() as usize;
        latencies_us[ix]
    };
    if open_loop {
        // pipelined sends make per-request round-trips meaningless;
        // throughput is the number that matters here
        println!(
            "completed {completed}/{requests} in {:.2}s ({:.0} req/s, open loop)",
            wall.as_secs_f64(),
            completed as f64 / wall.as_secs_f64().max(1e-9),
        );
    } else {
        println!(
            "completed {completed}/{requests} in {:.2}s ({:.0} req/s) | \
             latency p50 {}us p90 {}us p99 {}us",
            wall.as_secs_f64(),
            completed as f64 / wall.as_secs_f64().max(1e-9),
            pct(0.50),
            pct(0.90),
            pct(0.99),
        );
    }
    drop(idle);
    println!(
        "protocol errors {protocol_errors} | verify failures {verify_failures} | \
         disagreements {disagreements} | server cache hits {hits}"
    );
    print_durability(&addr);

    let mut failed = false;
    if completed != requests as u64 || protocol_errors > 0 {
        eprintln!("FAIL: protocol errors or missing responses");
        failed = true;
    }
    if verify_failures > 0 {
        eprintln!("FAIL: client-side verification failures");
        failed = true;
    }
    if disagreements > 0 {
        eprintln!("FAIL: verdict disagreement with in-process solve");
        failed = true;
    }
    if expect_hits && hits <= 0 {
        eprintln!("FAIL: expected a nonzero server cache hit count, got {hits}");
        failed = true;
    }
    if expect_metrics && !check_metrics(&addr, expect_hits, &[]) {
        failed = true;
    }
    // the percentiles above are client-side clocks; the server's own
    // histogram must account for (at least) every request served
    if !check_latency_agreement(&addr, completed) {
        failed = true;
    }
    if expect_traces && !check_traces(&addr, false) {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("load_driver: all checks passed");
}

/// The `--expect-metrics` gate: fetches the plain-text dump and checks
/// (a) every stable series name renders — the name set is the contract —
/// and (b) the counters this load necessarily exercised are nonzero.
/// `extra` names more series the caller's load must have moved (chaos
/// mode adds its fault/supervision counters).
fn check_metrics(addr: &str, expect_hits: bool, extra: &[&str]) -> bool {
    let Some(dump) = fetch_metrics_retry(addr, 10) else {
        eprintln!("FAIL: could not fetch the GetMetrics dump");
        return false;
    };
    let mut ok = true;
    for name in c1p_net::metrics::STABLE_NAMES {
        if !dump.lines().any(|l| l.starts_with(name)) {
            eprintln!("FAIL: stable metric {name} missing from the dump");
            ok = false;
        }
    }
    let mut exercised = vec![
        "c1pd_requests_total",
        "c1pd_connections_accepted_total",
        "c1pd_frames_read_total",
        "c1pd_frames_written_total",
        "c1pd_bytes_read_total",
        "c1pd_bytes_written_total",
        "c1pd_frame_latency_us_count",
        "c1pd_shard_jobs_total{shard=\"0\"}",
    ];
    if expect_hits {
        exercised.push("c1pd_cache_hits_total");
    }
    exercised.extend_from_slice(extra);
    for series in exercised {
        match c1p_net::metrics::scrape(&dump, series) {
            Some(v) if v > 0 => {}
            got => {
                eprintln!("FAIL: metric {series} should be nonzero after this load, got {got:?}");
                ok = false;
            }
        }
    }
    if ok {
        println!("metrics: all {} stable series present and exercised", dump.lines().count());
    }
    ok
}

/// [`fetch_metrics`] with retries — chaos mode's socket faults can kill
/// the scrape connection itself, which proves nothing about the server.
fn fetch_metrics_retry(addr: &str, attempts: usize) -> Option<String> {
    for _ in 0..attempts {
        if let Some(dump) = fetch_metrics(addr) {
            return Some(dump);
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    None
}

/// Fetches the plain-text metrics dump over a fresh connection.
fn fetch_metrics(addr: &str) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &encode_msg(&Msg::GetMetrics)).ok()?;
    writer.flush().ok()?;
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME).ok()??;
    match decode_msg(&payload) {
        Ok(Msg::Metrics { text }) => Some(text),
        _ => None,
    }
}

/// Fetches the JSONL trace dump over a fresh connection.
fn fetch_traces(addr: &str) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &encode_msg(&Msg::GetTraces)).ok()?;
    writer.flush().ok()?;
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME).ok()??;
    match decode_msg(&payload) {
        Ok(Msg::Traces { jsonl }) => Some(jsonl),
        _ => None,
    }
}

/// [`fetch_traces`] with retries, for the same reason as
/// [`fetch_metrics_retry`]: a chaos-faulted scrape connection proves
/// nothing about the server.
fn fetch_traces_retry(addr: &str, attempts: usize) -> Option<String> {
    for _ in 0..attempts {
        if let Some(jsonl) = fetch_traces(addr) {
            return Some(jsonl);
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    None
}

/// The `--expect-traces` gate: the server must have retained at least
/// one trace, and across the retained set every lifecycle span name must
/// appear, with at least 3 solver phase children. Chaos runs must also
/// have tail-sampled at least one slow or error trace — the retention
/// policy's whole point.
fn check_traces(addr: &str, chaos: bool) -> bool {
    let Some(jsonl) = fetch_traces_retry(addr, 10) else {
        eprintln!("FAIL: could not fetch the GetTraces dump");
        return false;
    };
    let lines: Vec<&str> = jsonl.lines().filter(|l| !l.is_empty()).collect();
    if lines.is_empty() {
        eprintln!("FAIL: no retained traces (is the server running with --trace-sample?)");
        return false;
    }
    let mut ok = true;
    let mut seen = std::collections::HashSet::new();
    for l in &lines {
        for chunk in l.split("{\"name\":\"").skip(1) {
            if let Some(end) = chunk.find('"') {
                seen.insert(chunk[..end].to_string());
            }
        }
    }
    for name in ["request", "decode", "admission", "queue", "mailbox", "cache", "solve", "flush"] {
        if !seen.contains(name) {
            eprintln!("FAIL: lifecycle span {name:?} absent from every retained trace");
            ok = false;
        }
    }
    let phases = seen.iter().filter(|n| n.starts_with("solve/")).count();
    if phases < 3 {
        eprintln!("FAIL: expected >= 3 solver phase spans across the traces, saw {phases}");
        ok = false;
    }
    if chaos
        && !lines
            .iter()
            .any(|l| l.contains("\"keep\":\"slow\"") || l.contains("\"keep\":\"error\""))
    {
        eprintln!("FAIL: a chaos run should tail-sample at least one slow/error trace");
        ok = false;
    }
    if ok {
        println!("traces: {} retained, {} distinct span names", lines.len(), seen.len());
    }
    ok
}

/// The latency-agreement check: the server's `c1pd_frame_latency_us`
/// histogram must be internally consistent (cumulative buckets whose
/// +Inf total equals `_count`) and must account for at least every
/// request this driver completed (`>=`, not `==`: the driver's own
/// stats/metrics probes are frames too).
fn check_latency_agreement(addr: &str, completed: u64) -> bool {
    let Some(dump) = fetch_metrics_retry(addr, 10) else {
        eprintln!("FAIL: could not fetch metrics for the latency agreement check");
        return false;
    };
    let mut cumulative: Vec<u64> = Vec::new();
    for l in dump.lines() {
        if let Some(rest) = l.strip_prefix("c1pd_frame_latency_us_bucket{le=") {
            // `"4"} 123` or `"4"} 123 # {trace_id="…"}` — value is the
            // first token after the label block
            let Some(v) = rest
                .split_once("} ")
                .and_then(|(_, v)| v.split_whitespace().next())
                .and_then(|t| t.parse::<u64>().ok())
            else {
                eprintln!("FAIL: unparseable latency bucket line: {l}");
                return false;
            };
            cumulative.push(v);
        }
    }
    if cumulative.is_empty() {
        eprintln!("FAIL: no frame latency buckets in the metrics dump");
        return false;
    }
    let mut ok = true;
    if cumulative.windows(2).any(|w| w[0] > w[1]) {
        eprintln!("FAIL: latency buckets are not cumulative: {cumulative:?}");
        ok = false;
    }
    let inf = *cumulative.last().expect("nonempty") as i64;
    let count = c1p_net::metrics::scrape(&dump, "c1pd_frame_latency_us_count").unwrap_or(-1);
    if inf != count {
        eprintln!("FAIL: +Inf bucket {inf} disagrees with histogram count {count}");
        ok = false;
    }
    if count < completed as i64 {
        eprintln!(
            "FAIL: server histogram counted {count} frames but the driver completed {completed}"
        );
        ok = false;
    }
    if ok {
        println!(
            "latency histogram agrees: {count} server observations cover \
             {completed} completed requests"
        );
    }
    ok
}

/// One open-loop connection: a writer thread pipelines the connection's
/// whole round-robin share without waiting for responses; this thread
/// reads them back and verifies each against its request — the
/// protocol's per-connection in-order guarantee makes the pairing exact.
/// Returns no latencies (round-trips are meaningless when requests
/// queue behind each other in the socket).
fn drive_connection_open_loop(
    conn_ix: usize,
    conns: usize,
    addr: &str,
    schedule: &[Ensemble],
    expected: &[bool],
    tally: &Tally,
) -> Vec<u64> {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| panic!("load_driver: cannot connect {addr}: {e}"));
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let share: Vec<usize> = (conn_ix..schedule.len()).step_by(conns).collect();

    // pre-encode the whole share into one buffer so the writer thread
    // owns plain bytes (no borrow of the schedule crosses the spawn) and
    // the socket sees back-to-back frames with no encode gaps between
    let mut burst = Vec::new();
    for &i in &share {
        let req = Msg::Solve { id: i as u64, ens: schedule[i].clone() };
        write_frame(&mut burst, &encode_msg(&req)).expect("Vec write cannot fail");
    }
    let writer_stream = reader.get_ref().try_clone().expect("clone stream");
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(writer_stream);
        w.write_all(&burst).and_then(|()| w.flush()).is_ok()
    });

    for &i in &share {
        let payload = match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
            Ok(Some(p)) => p,
            _ => {
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        };
        match decode_msg(&payload) {
            Ok(Msg::Verdict { id, verdict }) if id == i as u64 => {
                check_verdict(&schedule[i], expected[i], &verdict, tally);
                tally.completed.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Msg::Error { id, code, message }) => {
                eprintln!("server error for request {id}: {code:?}: {message}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
            other => {
                eprintln!("unexpected response for request {i}: {other:?}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    if !writer.join().expect("writer thread panicked") {
        tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }
    Vec::new()
}

/// One closed-loop connection: sends its round-robin share of the
/// schedule, verifying every response. Returns per-request latencies.
fn drive_connection(
    conn_ix: usize,
    conns: usize,
    addr: &str,
    schedule: &[Ensemble],
    expected: &[bool],
    tally: &Tally,
) -> Vec<u64> {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| panic!("load_driver: cannot connect {addr}: {e}"));
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let mut latencies = Vec::new();
    for i in (conn_ix..schedule.len()).step_by(conns) {
        let ens = &schedule[i];
        let t0 = Instant::now();
        let req = Msg::Solve { id: i as u64, ens: ens.clone() };
        if write_frame(&mut writer, &encode_msg(&req)).and_then(|()| writer.flush()).is_err() {
            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            break;
        }
        let payload = match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
            Ok(Some(p)) => p,
            _ => {
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        };
        latencies.push(t0.elapsed().as_micros() as u64);
        match decode_msg(&payload) {
            Ok(Msg::Verdict { id, verdict }) if id == i as u64 => {
                check_verdict(ens, expected[i], &verdict, tally);
                tally.completed.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Msg::Error { id, code, message }) => {
                eprintln!("server error for request {id}: {code:?}: {message}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
            other => {
                eprintln!("unexpected response for request {i}: {other:?}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    latencies
}

/// Client-side verification: the server's word is never taken for it.
fn check_verdict(ens: &Ensemble, expect_c1p: bool, verdict: &WireVerdict, tally: &Tally) {
    match verdict {
        WireVerdict::Accept { order } => {
            if !expect_c1p {
                tally.disagreements.fetch_add(1, Ordering::Relaxed);
            }
            if verify_linear(ens, order).is_err() {
                tally.verify_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        WireVerdict::Reject { family, atom_rows, column_ids } => {
            if expect_c1p {
                tally.disagreements.fetch_add(1, Ordering::Relaxed);
            }
            let witness = TuckerWitness {
                family: *family,
                atom_rows: atom_rows.clone(),
                column_ids: column_ids.clone(),
            };
            if verify_witness(ens, &witness).is_err() {
                tally.verify_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------
// session mode
// ---------------------------------------------------------------------

/// One deterministic session stream plus what the client expects of it.
struct StreamPlan {
    stream: c1p_matrix::generate::AppendStream,
    /// Push index that must come back rejected (`None` = accept-only).
    reject_at: Option<usize>,
}

fn sessions_main(args: &[String]) {
    let addr = flag(args, "--addr").expect("--addr HOST:PORT is required");
    let streams = (num_flag(args, "--streams", 8) as usize).max(1);
    let pushes = (num_flag(args, "--pushes", 6) as usize).max(1);
    let blocks = (num_flag(args, "--blocks", 4) as usize).max(1);
    let conns = (num_flag(args, "--conns", 4) as usize).max(1).min(streams);
    let seed = num_flag(args, "--seed", 1);
    let reject_every = num_flag(args, "--reject-every", 3) as usize;
    let n_lo = num_flag(args, "--n-lo", 64) as usize;
    let n_hi = num_flag(args, "--n-hi", 192) as usize;
    assert!(n_lo >= 16 * blocks, "reject embedding needs blocks of >= 16 atoms");
    assert!(n_hi >= n_lo);

    // deterministic plans: stream s gets a seed-derived size and stream
    let plans: Vec<StreamPlan> = (0..streams)
        .map(|s| {
            let stream_seed = seed.wrapping_mul(2609).wrapping_add(s as u64);
            // deterministic size without an RNG dependency here
            let n = n_lo + (stream_seed as usize).wrapping_mul(31) % (n_hi - n_lo + 1);
            if reject_every > 0 && s % reject_every == reject_every - 1 {
                let (stream, at, _) = append_stream_reject(n, blocks, pushes, stream_seed);
                StreamPlan { stream, reject_at: Some(at) }
            } else {
                StreamPlan {
                    stream: append_stream(n, blocks, pushes, stream_seed),
                    reject_at: None,
                }
            }
        })
        .collect();
    let rejects = plans.iter().filter(|p| p.reject_at.is_some()).count();
    println!(
        "load_driver: {streams} session stream(s) × {pushes} pushes ({rejects} with a planted \
         reject), {conns} connection(s), seed {seed}"
    );

    let tally = Arc::new(Tally::default());
    let plans = Arc::new(plans);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns {
        let (plans, tally, addr) = (Arc::clone(&plans), Arc::clone(&tally), addr.clone());
        handles.push(std::thread::spawn(move || drive_streams(c, conns, &addr, &plans, &tally)));
    }
    let mut latencies_us: Vec<u64> = Vec::new();
    for h in handles {
        latencies_us.extend(h.join().expect("driver thread panicked"));
    }
    let wall = t0.elapsed();

    let sealed = fetch_stat(&addr, "\"sessions_sealed\":").unwrap_or(-1);
    let completed = tally.completed.load(Ordering::Relaxed);
    let protocol_errors = tally.protocol_errors.load(Ordering::Relaxed);
    let verify_failures = tally.verify_failures.load(Ordering::Relaxed);
    let disagreements = tally.disagreements.load(Ordering::Relaxed);
    let expected_ops = (streams * (pushes + 2)) as u64; // open + pushes + seal

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        latencies_us[((latencies_us.len() - 1) as f64 * p).round() as usize]
    };
    println!(
        "completed {completed}/{expected_ops} session ops in {:.2}s ({:.0} ops/s) | \
         latency p50 {}us p90 {}us p99 {}us",
        wall.as_secs_f64(),
        completed as f64 / wall.as_secs_f64().max(1e-9),
        pct(0.50),
        pct(0.90),
        pct(0.99),
    );
    println!(
        "protocol errors {protocol_errors} | verify failures {verify_failures} | \
         disagreements {disagreements} | server sessions sealed {sealed}"
    );
    print_durability(&addr);

    let mut failed = false;
    if completed != expected_ops || protocol_errors > 0 {
        eprintln!("FAIL: protocol errors or missing responses");
        failed = true;
    }
    if verify_failures > 0 {
        eprintln!("FAIL: client-side verification failures");
        failed = true;
    }
    if disagreements > 0 {
        eprintln!("FAIL: verdict disagreement with the client-side mirror / one-shot solve");
        failed = true;
    }
    if sealed != streams as i64 {
        eprintln!("FAIL: expected {streams} sealed sessions on the server, got {sealed}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("load_driver: all session checks passed");
}

/// Drives this connection's round-robin share of the streams, one full
/// session each (open → pushes → seal), verifying every verdict
/// client-side. Returns per-operation latencies.
fn drive_streams(
    conn_ix: usize,
    conns: usize,
    addr: &str,
    plans: &[StreamPlan],
    tally: &Tally,
) -> Vec<u64> {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| panic!("load_driver: cannot connect {addr}: {e}"));
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let mut latencies = Vec::new();
    let mut req_id = (conn_ix as u64) << 32;
    let mut rpc = |msg: &Msg, latencies: &mut Vec<u64>| -> Option<Msg> {
        let t0 = Instant::now();
        if write_frame(&mut writer, &encode_msg(msg)).and_then(|()| writer.flush()).is_err() {
            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let payload = match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
            Ok(Some(p)) => p,
            _ => {
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        latencies.push(t0.elapsed().as_micros() as u64);
        match decode_msg(&payload) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("undecodable response: {e}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    };
    'plans: for plan in plans.iter().skip(conn_ix).step_by(conns) {
        let n = plan.stream.n_atoms;
        // open (the ack's verdict is the empty state: an elided identity
        // order — see the proto docs)
        req_id += 1;
        let session = match rpc(&Msg::OpenSession { id: req_id, n_atoms: n as u64 }, &mut latencies)
        {
            Some(Msg::SessionVerdict { id, session, verdict: WireVerdict::Accept { order } })
                if id == req_id && order.is_empty() =>
            {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                session
            }
            other => {
                eprintln!("unexpected OpenSession response: {other:?}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        // pushes, with a client-side incremental PQ mirror
        let mut accepted: Vec<Vec<Atom>> = Vec::new();
        let mut mirror = c1p_pqtree::Reducer::new(n);
        for (k, push) in plan.stream.pushes.iter().enumerate() {
            let delta = Ensemble::from_columns(n, push.clone()).expect("stream columns valid");
            let mut predicted_ok = true;
            for col in push {
                predicted_ok &= mirror.push(col);
            }
            req_id += 1;
            let resp =
                rpc(&Msg::PushAtoms { id: req_id, session, delta: delta.clone() }, &mut latencies);
            let Some(Msg::SessionVerdict { id, session: s2, verdict }) = resp else {
                // mirror and server are now out of step: abandon the
                // whole stream so one fault doesn't cascade into bogus
                // disagreements on every later push
                eprintln!("unexpected PushAtoms response; abandoning stream");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                continue 'plans;
            };
            if id != req_id || s2 != session {
                eprintln!("mismatched PushAtoms echo; abandoning stream");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                continue 'plans;
            }
            tally.completed.fetch_add(1, Ordering::Relaxed);
            // the concatenation this verdict speaks about
            let mut cols = accepted.clone();
            cols.extend(push.iter().cloned());
            let concat = Ensemble::from_columns(n, cols).expect("stream columns valid");
            match verdict {
                WireVerdict::Accept { order } => {
                    if verify_linear(&concat, &order).is_err() {
                        tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if !predicted_ok || plan.reject_at == Some(k) {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                    accepted.extend(push.iter().cloned());
                }
                WireVerdict::Reject { family, atom_rows, column_ids } => {
                    let witness = TuckerWitness { family, atom_rows, column_ids };
                    if verify_witness(&concat, &witness).is_err() {
                        tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if predicted_ok || plan.reject_at != Some(k) {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                    // server rolled back; rebuild the spent mirror from
                    // the accepted prefix
                    mirror = c1p_pqtree::Reducer::new(n);
                    for col in &accepted {
                        mirror.push(col);
                    }
                }
            }
        }
        // seal: the final order must agree bit-identically with a
        // one-shot in-process solve of the accepted concatenation
        req_id += 1;
        match rpc(&Msg::SealSession { id: req_id, session }, &mut latencies) {
            Some(Msg::SessionVerdict { id, verdict: WireVerdict::Accept { order }, .. })
                if id == req_id =>
            {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                let fin =
                    Ensemble::from_columns(n, accepted.clone()).expect("stream columns valid");
                match c1p_core::solve(&fin) {
                    Ok(expect) if expect == order => {}
                    _ => {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            other => {
                eprintln!("unexpected SealSession response: {other:?}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    latencies
}

// ---------------------------------------------------------------------
// crash mode
// ---------------------------------------------------------------------

/// One stream's client-side truth across server crashes: the driver never
/// dies, so this — not the server — is the arbiter of what was accepted.
struct CrashStream {
    plan: StreamPlan,
    /// The server-issued session handle (survives restarts: recovery
    /// rebuilds the session under the same id from its WAL header).
    session: Option<u64>,
    next_push: usize,
    accepted: Vec<Vec<Atom>>,
    /// The incremental Booth–Lueker mirror predicting every verdict.
    mirror: c1p_pqtree::Reducer,
    sealed: bool,
}

impl CrashStream {
    /// Rebuilds the mirror from the accepted prefix — used after a
    /// rejected push (server rolled back) and after a crash mid-push
    /// (the attempted columns were fed to the mirror but never acked).
    fn rebuild_mirror(&mut self) {
        self.mirror = c1p_pqtree::Reducer::new(self.plan.stream.n_atoms);
        for col in &self.accepted {
            self.mirror.push(col);
        }
    }
}

fn crash_main(args: &[String]) {
    let server_bin = flag(args, "--server").expect("--server PATH (the c1pd binary) is required");
    let wal_dir = flag(args, "--wal-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("c1p-crash-{}", std::process::id())));
    std::fs::create_dir_all(&wal_dir).expect("create --wal-dir");
    let cycles = (num_flag(args, "--cycles", 5) as usize).max(2);
    let streams_n = (num_flag(args, "--streams", 6) as usize).max(1);
    let pushes = (num_flag(args, "--pushes", 8) as usize).max(2);
    let blocks = (num_flag(args, "--blocks", 4) as usize).max(1);
    let seed = num_flag(args, "--seed", 1);
    let reject_every = num_flag(args, "--reject-every", 3) as usize;
    let n_lo = num_flag(args, "--n-lo", 64) as usize;
    let n_hi = num_flag(args, "--n-hi", 160) as usize;
    let snapshot_ms = num_flag(args, "--snapshot-ms", 50);
    let fault_every = num_flag(args, "--fault-every", 2) as usize;
    assert!(n_lo >= 16 * blocks, "reject embedding needs blocks of >= 16 atoms");
    assert!(n_hi >= n_lo);

    let mut streams: Vec<CrashStream> = (0..streams_n)
        .map(|s| {
            let stream_seed = seed.wrapping_mul(2609).wrapping_add(s as u64);
            let n = n_lo + (stream_seed as usize).wrapping_mul(31) % (n_hi - n_lo + 1);
            let plan = if reject_every > 0 && s % reject_every == reject_every - 1 {
                let (stream, at, _) = append_stream_reject(n, blocks, pushes, stream_seed);
                StreamPlan { stream, reject_at: Some(at) }
            } else {
                StreamPlan {
                    stream: append_stream(n, blocks, pushes, stream_seed),
                    reject_at: None,
                }
            };
            let mirror = c1p_pqtree::Reducer::new(plan.stream.n_atoms);
            CrashStream {
                plan,
                session: None,
                next_push: 0,
                accepted: Vec::new(),
                mirror,
                sealed: false,
            }
        })
        .collect();

    // the warm-start probe: solved cold in cycle 0, snapshotted, and from
    // every restart on its first solve must be served warm
    let probe = append_stream(n_lo, blocks, 2, seed ^ 0x9e37).final_ensemble();

    let tally = Tally::default();
    let mut anomalies = 0u64;
    let mut kills = 0usize;
    let mut faults = 0usize;
    println!(
        "load_driver crash: {streams_n} stream(s) × {pushes} pushes over {cycles} cycle(s), \
         wal dir {}, seed {seed}",
        wal_dir.display()
    );

    for cycle in 0..cycles {
        let last = cycle + 1 == cycles;
        // every --fault-every-th crash dies mid-WAL-append instead of
        // between acknowledged operations
        let fault = !last && fault_every > 0 && cycle % fault_every == fault_every - 1;
        let fault_after = 1 + (seed as usize).wrapping_add(13 * cycle) % 4;
        let port_file = wal_dir.join(format!("port-{cycle}"));
        let _ = std::fs::remove_file(&port_file);
        let mut cmd = std::process::Command::new(&server_bin);
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--port-file")
            .arg(&port_file)
            .arg("--wal-dir")
            .arg(&wal_dir)
            .arg("--snapshot-ms")
            .arg(snapshot_ms.to_string())
            .arg("--threads")
            .arg("2")
            .stdout(std::process::Stdio::null());
        if fault {
            cmd.arg("--wal-fault-after").arg(fault_after.to_string());
        }
        let mut child = cmd.spawn().unwrap_or_else(|e| panic!("cannot spawn {server_bin}: {e}"));
        let addr = format!("127.0.0.1:{}", wait_port(&port_file));

        // restart audits: nothing quarantined, every live session back,
        // and the probe answered from the snapshot-warmed cache
        let quarantined = fetch_stat(&addr, "\"quarantined_wals\":").unwrap_or(-1);
        if quarantined != 0 {
            eprintln!("FAIL: cycle {cycle}: {quarantined} quarantined WAL(s) after restart");
            anomalies += 1;
        }
        if cycle > 0 {
            let live = streams.iter().filter(|s| s.session.is_some() && !s.sealed).count() as i64;
            let recovered = fetch_stat(&addr, "\"recovered_sessions\":").unwrap_or(-1);
            if recovered < live {
                eprintln!("FAIL: cycle {cycle}: recovered {recovered} of {live} live session(s)");
                anomalies += 1;
            }
        }
        if !solve_probe(&addr, &probe, &tally) {
            eprintln!("FAIL: cycle {cycle}: warm-start probe solve failed");
            anomalies += 1;
        }
        // baseline for the pre-kill snapshot gate: a snapshot write may be
        // in flight with a cache image read *before* the probe landed, so
        // the gate below waits for two increments past this point — the
        // second one provably started after the probe was cached
        let snap_base = fetch_stat(&addr, "\"snapshot_writes\":").unwrap_or(0).max(0);
        if cycle > 0 {
            let warm = fetch_stat(&addr, "\"warm_start_hits\":").unwrap_or(-1);
            if warm < 1 {
                eprintln!("FAIL: cycle {cycle}: first probe solve after restart was not warm");
                anomalies += 1;
            }
        }

        // drive: unbounded on fault cycles (the server picks the crash
        // instant) and on the last cycle (everything must finish); a
        // seeded acknowledged-operation budget otherwise
        let budget = if last || fault {
            usize::MAX
        } else {
            2 + (seed as usize).wrapping_mul(31).wrapping_add(17 * cycle) % 6
        };
        let conn_died = drive_crash_cycle(&addr, &mut streams, budget, &tally);

        if last {
            let all_sealed = streams.iter().all(|s| s.sealed);
            if !all_sealed || conn_died {
                eprintln!("FAIL: final cycle did not seal every stream");
                anomalies += 1;
            }
            print_durability(&addr);
            child.kill().ok();
            child.wait().ok();
        } else if fault && conn_died {
            faults += 1; // the server aborted itself mid-append
            child.wait().ok();
        } else {
            if conn_died {
                eprintln!("FAIL: cycle {cycle}: connection died without an injected fault");
                anomalies += 1;
            }
            // make sure a snapshot that *postdates the probe solve* exists
            // before the kill, so the next boot warm-starts the probe
            if !wait_stat_at_least(&addr, "\"snapshot_writes\":", snap_base + 2) {
                eprintln!("FAIL: cycle {cycle}: no post-probe snapshot written before kill");
                anomalies += 1;
            }
            child.kill().ok(); // SIGKILL: no goodbye, that is the point
            child.wait().ok();
            kills += 1;
        }
    }

    let completed = tally.completed.load(Ordering::Relaxed);
    let protocol_errors = tally.protocol_errors.load(Ordering::Relaxed);
    let verify_failures = tally.verify_failures.load(Ordering::Relaxed);
    let disagreements = tally.disagreements.load(Ordering::Relaxed);
    let sealed = streams.iter().filter(|s| s.sealed).count();
    println!(
        "crash cycles {cycles} ({kills} kill -9, {faults} mid-append fault) | \
         ops acked {completed} | sealed {sealed}/{streams_n}"
    );
    println!(
        "protocol errors {protocol_errors} | verify failures {verify_failures} | \
         disagreements {disagreements} | audit anomalies {anomalies}"
    );
    if protocol_errors > 0 || verify_failures > 0 || disagreements > 0 || anomalies > 0 {
        eprintln!("FAIL: crash-recovery audit failed");
        std::process::exit(1);
    }
    println!("load_driver: all crash-recovery checks passed");
}

/// Drives every unfinished stream in order, spending at most `budget`
/// acknowledged operations. Returns `true` if the connection died (the
/// injected mid-append fault fired — or the server vanished unexpectedly,
/// which the caller flags).
fn drive_crash_cycle(
    addr: &str,
    streams: &mut [CrashStream],
    mut budget: usize,
    tally: &Tally,
) -> bool {
    let Ok(stream) = TcpStream::connect(addr) else {
        return true;
    };
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let mut req_id = 0u64;
    let mut rpc = |msg: &Msg| -> Option<Msg> {
        // unlike the other modes, a failed exchange here is *expected*
        // (that is what a crash looks like) — the caller classifies it
        if write_frame(&mut writer, &encode_msg(msg)).and_then(|()| writer.flush()).is_err() {
            return None;
        }
        match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
            Ok(Some(p)) => decode_msg(&p).ok(),
            _ => None,
        }
    };
    for st in streams.iter_mut().filter(|s| !s.sealed) {
        let n = st.plan.stream.n_atoms;
        if st.session.is_none() {
            if budget == 0 {
                return false;
            }
            req_id += 1;
            match rpc(&Msg::OpenSession { id: req_id, n_atoms: n as u64 }) {
                Some(Msg::SessionVerdict { id, session, .. }) if id == req_id => {
                    st.session = Some(session);
                    tally.completed.fetch_add(1, Ordering::Relaxed);
                    budget -= 1;
                }
                None => return true,
                other => {
                    eprintln!("unexpected OpenSession response: {other:?}");
                    tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        let session = st.session.expect("opened above");
        while st.next_push < st.plan.stream.pushes.len() {
            if budget == 0 {
                return false;
            }
            let k = st.next_push;
            let push = st.plan.stream.pushes[k].clone();
            let delta = Ensemble::from_columns(n, push.clone()).expect("stream columns valid");
            let mut predicted_ok = true;
            for col in &push {
                predicted_ok &= st.mirror.push(col);
            }
            req_id += 1;
            let resp = rpc(&Msg::PushAtoms { id: req_id, session, delta: delta.clone() });
            let Some(Msg::SessionVerdict { id, session: s2, verdict }) = resp else {
                // crash mid-push: the record was torn (or never written),
                // so the push is NOT durable — recovery must agree, and
                // this same push is retried next cycle
                st.rebuild_mirror();
                return true;
            };
            if id != req_id || s2 != session {
                eprintln!("mismatched PushAtoms echo");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            tally.completed.fetch_add(1, Ordering::Relaxed);
            budget -= 1;
            let mut cols = st.accepted.clone();
            cols.extend(push.iter().cloned());
            let concat = Ensemble::from_columns(n, cols).expect("stream columns valid");
            match verdict {
                WireVerdict::Accept { order } => {
                    if verify_linear(&concat, &order).is_err() {
                        tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if !predicted_ok || st.plan.reject_at == Some(k) {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                    st.accepted.extend(push.iter().cloned());
                }
                WireVerdict::Reject { family, atom_rows, column_ids } => {
                    let witness = TuckerWitness { family, atom_rows, column_ids };
                    if verify_witness(&concat, &witness).is_err() {
                        tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if predicted_ok || st.plan.reject_at != Some(k) {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                    st.rebuild_mirror();
                }
            }
            st.next_push += 1;
        }
        if budget == 0 {
            return false;
        }
        // seal: bit-identical to a one-shot in-process solve of the
        // accepted concatenation — the acceptance criterion, verbatim
        req_id += 1;
        match rpc(&Msg::SealSession { id: req_id, session }) {
            Some(Msg::SessionVerdict { id, verdict: WireVerdict::Accept { order }, .. })
                if id == req_id =>
            {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                budget -= 1;
                let fin =
                    Ensemble::from_columns(n, st.accepted.clone()).expect("stream columns valid");
                match c1p_core::solve(&fin) {
                    Ok(expect) if expect == order => {}
                    _ => {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                }
                st.sealed = true;
            }
            None => return true,
            other => {
                eprintln!("unexpected SealSession response: {other:?}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// chaos mode
// ---------------------------------------------------------------------

/// Counts that only chaos mode keeps, alongside the shared [`Tally`].
#[derive(Default)]
struct ChaosTally {
    /// Operations that exceeded the client deadline — each one is a
    /// request that effectively hung. The gate is zero.
    hangs: AtomicU64,
    /// Pushes whose verdict frame was lost but whose application was
    /// proven by the recovered-hash handshake.
    recovered_pushes: AtomicU64,
    /// Seals that applied with the reply lost (order re-derived and
    /// verified via `Solve`).
    lost_seals: AtomicU64,
}

fn chaos_main(args: &[String]) {
    let server_bin = flag(args, "--server").expect("--server PATH (the c1pd binary) is required");
    let wal_dir = flag(args, "--wal-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("c1p-chaos-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("create --wal-dir");
    let shards = (num_flag(args, "--shards", 2) as usize).max(1);
    let streams_n = (num_flag(args, "--streams", 8) as usize).max(1);
    let pushes = (num_flag(args, "--pushes", 6) as usize).max(2);
    let blocks = (num_flag(args, "--blocks", 4) as usize).max(1);
    let solves = (num_flag(args, "--solves", 60) as usize).max(1);
    let seed = num_flag(args, "--seed", 1);
    let reject_every = num_flag(args, "--reject-every", 3) as usize;
    let n_lo = num_flag(args, "--n-lo", 64) as usize;
    let n_hi = num_flag(args, "--n-hi", 160) as usize;
    let kill_every = num_flag(args, "--kill-every", 6);
    let drop_every = num_flag(args, "--drop-every", 5);
    let socket_every = num_flag(args, "--socket-every", 17);
    let delay_every = num_flag(args, "--delay-every", 11);
    let wal_torn_every = num_flag(args, "--wal-torn-every", 7);
    let deadline_ms = num_flag(args, "--deadline-ms", 400);
    let expect_metrics = args.iter().any(|a| a == "--expect-metrics");
    let trace_sample = num_flag(args, "--trace-sample", 0);
    let slow_ms = num_flag(args, "--slow-ms", 100);
    let expect_traces = args.iter().any(|a| a == "--expect-traces");
    assert!(n_lo >= 16 * blocks, "reject embedding needs blocks of >= 16 atoms");
    assert!(n_hi >= n_lo);

    // the same deterministic plans session mode replays — chaos changes
    // the transport, never the workload
    let plans: Vec<StreamPlan> = (0..streams_n)
        .map(|s| {
            let stream_seed = seed.wrapping_mul(2609).wrapping_add(s as u64);
            let n = n_lo + (stream_seed as usize).wrapping_mul(31) % (n_hi - n_lo + 1);
            if reject_every > 0 && s % reject_every == reject_every - 1 {
                let (stream, at, _) = append_stream_reject(n, blocks, pushes, stream_seed);
                StreamPlan { stream, reject_at: Some(at) }
            } else {
                StreamPlan {
                    stream: append_stream(n, blocks, pushes, stream_seed),
                    reject_at: None,
                }
            }
        })
        .collect();

    let port_file = wal_dir.join("port");
    let mut child = std::process::Command::new(&server_bin)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--port-file")
        .arg(&port_file)
        .arg("--event-loop")
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--wal-dir")
        .arg(&wal_dir)
        .arg("--threads")
        .arg("2")
        .arg("--chaos-seed")
        .arg(seed.to_string())
        .arg("--chaos-kill-every")
        .arg(kill_every.to_string())
        .arg("--chaos-drop-every")
        .arg(drop_every.to_string())
        .arg("--chaos-socket-every")
        .arg(socket_every.to_string())
        .arg("--chaos-delay-every")
        .arg(delay_every.to_string())
        .arg("--chaos-wal-torn-every")
        .arg(wal_torn_every.to_string())
        .arg("--request-deadline-ms")
        .arg(deadline_ms.to_string())
        .arg("--trace-sample")
        .arg(trace_sample.to_string())
        .arg("--slow-ms")
        .arg(slow_ms.to_string())
        .arg("--trace-seed")
        .arg(seed.to_string())
        .stdout(std::process::Stdio::null())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn {server_bin}: {e}"));
    let addr = format!("127.0.0.1:{}", wait_port(&port_file));
    println!(
        "load_driver chaos: {streams_n} stream(s) × {pushes} pushes + {solves} solve(s) against \
         {shards} shard(s); kill/{kill_every} drop/{drop_every} socket/{socket_every} \
         delay/{delay_every} wal-torn/{wal_torn_every}, deadline {deadline_ms}ms, seed {seed}"
    );

    let tally = Arc::new(Tally::default());
    let chaos = Arc::new(ChaosTally::default());
    let plans = Arc::new(plans);
    let t0 = Instant::now();
    let sessions_thread = {
        let (plans, tally, chaos, addr) =
            (Arc::clone(&plans), Arc::clone(&tally), Arc::clone(&chaos), addr.clone());
        std::thread::spawn(move || drive_chaos_streams(&addr, &plans, &tally, &chaos, seed))
    };
    let solves_thread = {
        let (tally, chaos, addr) = (Arc::clone(&tally), Arc::clone(&chaos), addr.clone());
        std::thread::spawn(move || drive_chaos_solves(&addr, solves, seed, &tally, &chaos))
    };
    let client_retries = sessions_thread.join().expect("sessions thread panicked")
        + solves_thread.join().expect("solves thread panicked");
    let wall = t0.elapsed();

    let completed = tally.completed.load(Ordering::Relaxed);
    let protocol_errors = tally.protocol_errors.load(Ordering::Relaxed);
    let verify_failures = tally.verify_failures.load(Ordering::Relaxed);
    let disagreements = tally.disagreements.load(Ordering::Relaxed);
    let hangs = chaos.hangs.load(Ordering::Relaxed);
    let recovered_pushes = chaos.recovered_pushes.load(Ordering::Relaxed);
    let lost_seals = chaos.lost_seals.load(Ordering::Relaxed);
    let expected_ops = (streams_n * (pushes + 2) + solves) as u64;
    println!(
        "completed {completed}/{expected_ops} ops in {:.2}s | client retries {client_retries} \
         ({recovered_pushes} pushes recovered by handshake, {lost_seals} seals re-derived)",
        wall.as_secs_f64(),
    );
    println!(
        "protocol errors {protocol_errors} | verify failures {verify_failures} | \
         disagreements {disagreements} | hangs {hangs}"
    );

    // the chaos must be real: scrape the proof before killing the server
    let mut failed = false;
    let scrape = |dump: &str, name: &str| c1p_net::metrics::scrape(dump, name).unwrap_or(-1);
    match fetch_metrics_retry(&addr, 10) {
        Some(dump) => {
            let injected = scrape(&dump, "c1pd_faults_injected_total");
            let restarts = scrape(&dump, "c1pd_shard_restarts_total");
            let swept = scrape(&dump, "c1pd_degraded_replies_total");
            let reaped = scrape(&dump, "c1pd_deadline_expired_total");
            let queries = scrape(&dump, "c1pd_retries_total");
            println!(
                "server: faults injected {injected} | shard restarts {restarts} | \
                 swept replies {swept} | deadline reaps {reaped} | handshake queries {queries}"
            );
            if injected < 1 {
                eprintln!("FAIL: the fault plan never fired — this was not a chaos run");
                failed = true;
            }
            if restarts < 1 {
                eprintln!("FAIL: no supervised shard restart happened");
                failed = true;
            }
            let recovered = fetch_stat(&addr, "\"recovered_sessions\":").unwrap_or(-1);
            if recovered < 1 {
                eprintln!("FAIL: no session was recovered from the WAL after a restart");
                failed = true;
            }
            println!("server: sessions recovered from WAL after restarts: {recovered}");
        }
        None => {
            eprintln!("FAIL: could not scrape the server after the run");
            failed = true;
        }
    }
    if expect_metrics
        && !check_metrics(
            &addr,
            false,
            &[
                "c1pd_faults_injected_total",
                "c1pd_retries_total",
                "c1pd_shard_restarts_total",
                "c1pd_degraded_replies_total",
                "c1pd_deadline_expired_total",
            ],
        )
    {
        failed = true;
    }
    if expect_traces && !check_traces(&addr, true) {
        failed = true;
    }
    child.kill().ok();
    child.wait().ok();
    let _ = std::fs::remove_dir_all(&wal_dir);

    if completed != expected_ops || protocol_errors > 0 {
        eprintln!("FAIL: protocol errors or unsettled operations");
        failed = true;
    }
    if verify_failures > 0 {
        eprintln!("FAIL: client-side verification failures");
        failed = true;
    }
    if disagreements > 0 {
        eprintln!("FAIL: verdict disagreement with the PQ mirror / in-process solve");
        failed = true;
    }
    if hangs > 0 {
        eprintln!("FAIL: {hangs} operation(s) outlived the client deadline");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("load_driver: all chaos checks passed");
}

/// The chaos retry policy: a deadline far above any injected stall so a
/// `DeadlineExceeded` can only mean a genuine hang, and a tight backoff
/// so the run stays fast.
fn chaos_policy(seed: u64) -> c1p_net::client::RetryPolicy {
    c1p_net::client::RetryPolicy {
        deadline: std::time::Duration::from_secs(60),
        base: std::time::Duration::from_millis(2),
        cap: std::time::Duration::from_millis(50),
        seed,
    }
}

/// Streams every session plan through the self-healing client, predicting
/// each verdict with the incremental PQ mirror and gating seals on the
/// in-process solve. Returns the client's transport retry count.
fn drive_chaos_streams(
    addr: &str,
    plans: &[StreamPlan],
    tally: &Tally,
    chaos: &ChaosTally,
    seed: u64,
) -> u64 {
    use c1p_net::client::{Client, ClientError, PushOutcome, SealOutcome};
    let mut client = Client::new(addr, chaos_policy(seed ^ 0xC1A0));
    for (s, plan) in plans.iter().enumerate() {
        let n = plan.stream.n_atoms;
        let mut mirror = c1p_pqtree::Reducer::new(n);
        let mut accepted: Vec<Vec<Atom>> = Vec::new();
        let mut session = match client.open_session(n) {
            Ok(session) => {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                session
            }
            Err(ClientError::DeadlineExceeded { .. }) => {
                chaos.hangs.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            Err(e) => {
                eprintln!("stream {s}: open failed: {e}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        let mut abandoned = false;
        for k in 0..plan.stream.pushes.len() {
            let push = plan.stream.pushes[k].clone();
            let delta = Ensemble::from_columns(n, push.clone()).expect("stream columns valid");
            let mut predicted_ok = true;
            for col in &push {
                predicted_ok &= mirror.push(col);
            }
            let mut cols = accepted.clone();
            cols.extend(push.iter().cloned());
            let concat = Ensemble::from_columns(n, cols).expect("stream columns valid");
            match session.push(&delta) {
                Ok(PushOutcome::Verdict(WireVerdict::Accept { order })) => {
                    tally.completed.fetch_add(1, Ordering::Relaxed);
                    if verify_linear(&concat, &order).is_err() {
                        tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if !predicted_ok || plan.reject_at == Some(k) {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                    accepted.extend(push.iter().cloned());
                }
                Ok(PushOutcome::Verdict(WireVerdict::Reject { family, atom_rows, column_ids })) => {
                    tally.completed.fetch_add(1, Ordering::Relaxed);
                    let witness = TuckerWitness { family, atom_rows, column_ids };
                    if verify_witness(&concat, &witness).is_err() {
                        tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if predicted_ok || plan.reject_at != Some(k) {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                    // server rolled back; resync the mirror to match
                    mirror = c1p_pqtree::Reducer::new(n);
                    for col in &accepted {
                        mirror.push(col);
                    }
                }
                Ok(PushOutcome::RecoveredAccepted) => {
                    // the handshake proved application; the lost frame's
                    // witness is gone, but acceptance itself must agree
                    tally.completed.fetch_add(1, Ordering::Relaxed);
                    chaos.recovered_pushes.fetch_add(1, Ordering::Relaxed);
                    if !predicted_ok || plan.reject_at == Some(k) {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                    accepted.extend(push.iter().cloned());
                }
                Err(ClientError::DeadlineExceeded { .. }) => {
                    chaos.hangs.fetch_add(1, Ordering::Relaxed);
                    abandoned = true;
                    break;
                }
                Err(e) => {
                    eprintln!("stream {s} push {k}: {e}");
                    tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    abandoned = true;
                    break;
                }
            }
        }
        if abandoned {
            continue;
        }
        let fin = Ensemble::from_columns(n, accepted.clone()).expect("stream columns valid");
        match session.seal() {
            Ok(SealOutcome::Order(order)) => {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                // the acceptance criterion, verbatim: a delivered seal is
                // bit-identical to the fault-free one-shot solve
                match c1p_core::solve(&fin) {
                    Ok(expect) if expect == order => {}
                    _ => {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Ok(SealOutcome::LostButSealed) => {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                chaos.lost_seals.fetch_add(1, Ordering::Relaxed);
                // the reply is unrecoverable but the order is not: solve
                // the accepted concatenation and verify the witness
                match client.solve(&fin) {
                    Ok(WireVerdict::Accept { order }) => {
                        if verify_linear(&fin, &order).is_err() {
                            tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Ok(other) => {
                        eprintln!("stream {s}: post-seal solve rejected: {other:?}");
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ClientError::DeadlineExceeded { .. }) => {
                        chaos.hangs.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        eprintln!("stream {s}: post-seal solve failed: {e}");
                        tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(ClientError::DeadlineExceeded { .. }) => {
                chaos.hangs.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                eprintln!("stream {s} seal: {e}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    client.retries()
}

/// Runs the mixed solve schedule through a retrying client, verifying
/// every verdict client-side. Returns the client's transport retry count.
fn drive_chaos_solves(
    addr: &str,
    solves: usize,
    seed: u64,
    tally: &Tally,
    chaos: &ChaosTally,
) -> u64 {
    use c1p_net::client::{Client, ClientError};
    let schedule = mixed_schedule(MixedSchedule {
        requests: solves,
        seed: seed ^ 0x50_1f,
        dup_every: 3,
        reject_every: 4,
        n_lo: 48,
        n_hi: 128,
    });
    let mut client = Client::new(addr, chaos_policy(seed ^ 0x50_1f));
    for (i, ens) in schedule.iter().enumerate() {
        match client.solve(ens) {
            Ok(WireVerdict::Accept { order }) => {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                if verify_linear(ens, &order).is_err() {
                    tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                }
                if c1p_core::solve(ens).is_err() {
                    tally.disagreements.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(WireVerdict::Reject { family, atom_rows, column_ids }) => {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                let witness = TuckerWitness { family, atom_rows, column_ids };
                if verify_witness(ens, &witness).is_err() {
                    tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                }
                if c1p_core::solve(ens).is_ok() {
                    tally.disagreements.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(ClientError::DeadlineExceeded { .. }) => {
                chaos.hangs.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                eprintln!("solve {i}: {e}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    client.retries()
}

/// Solves the warm-start probe and verifies the witness. Returns false on
/// any protocol or verification failure.
fn solve_probe(addr: &str, probe: &Ensemble, tally: &Tally) -> bool {
    let Ok(stream) = TcpStream::connect(addr) else {
        return false;
    };
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let msg = Msg::Solve { id: 1, ens: probe.clone() };
    if write_frame(&mut writer, &encode_msg(&msg)).and_then(|()| writer.flush()).is_err() {
        return false;
    }
    let Ok(Some(payload)) = read_frame(&mut reader, DEFAULT_MAX_FRAME) else {
        return false;
    };
    match decode_msg(&payload) {
        Ok(Msg::Verdict { id: 1, verdict: WireVerdict::Accept { order } }) => {
            if verify_linear(probe, &order).is_err() {
                tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            true
        }
        _ => false,
    }
}

/// Polls the bare-port file a spawned `c1pd --port-file` writes.
fn wait_port(path: &std::path::Path) -> u16 {
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    while Instant::now() < deadline {
        if let Ok(s) = std::fs::read_to_string(path) {
            if let Ok(port) = s.trim().parse() {
                return port;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("server did not write {} within 30s", path.display());
}

/// Polls a stats counter until it reaches `min` (10s cap).
fn wait_stat_at_least(addr: &str, key: &str, min: i64) -> bool {
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    while Instant::now() < deadline {
        if fetch_stat(addr, key).unwrap_or(-1) >= min {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    false
}

/// Prints the server's durability counters (zeros on a non-durable server).
fn print_durability(addr: &str) {
    let get = |key: &str| fetch_stat(addr, key).unwrap_or(-1);
    println!(
        "durability: wal appends {} | wal fsyncs {} | recovered sessions {} | \
         quarantined wals {} | snapshot writes {} | warm-start hits {}",
        get("\"wal_appends\":"),
        get("\"wal_fsyncs\":"),
        get("\"recovered_sessions\":"),
        get("\"quarantined_wals\":"),
        get("\"snapshot_writes\":"),
        get("\"warm_start_hits\":"),
    );
}

/// Queries the server's stats frame and scans one integer field out of the
/// JSON (the driver carries no JSON parser by design, matching par_smoke).
fn fetch_stat(addr: &str, key: &str) -> Option<i64> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &encode_msg(&Msg::GetStats)).ok()?;
    writer.flush().ok()?;
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME).ok()??;
    match decode_msg(&payload).ok()? {
        Msg::Stats { json } => {
            let at = json.find(key)?;
            let rest = json[at + key.len()..].trim_start();
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().parse().ok()
        }
        _ => None,
    }
}

//! `c1pd` — the std-only TCP front-end of the solve engine.
//!
//! ```text
//! c1pd [--addr 127.0.0.1:9119] [--port-file PATH] [--threads N]
//!      [--cache-mb MB] [--max-batch N] [--small-cutoff N]
//!      [--max-queue N] [--max-atoms N] [--max-conns N] [--max-frame-mb MB]
//!      [--max-sessions N] [--session-idle-ms MS] [--max-session-mb MB]
//!      [--wal-dir DIR] [--snapshot-ms MS] [--wal-fault-after N]
//!      [--event-loop] [--shards N] [--read-timeout-ms MS] [--outbox-kb KB]
//!      [--chaos-seed N] [--chaos-socket-every N] [--chaos-kill-every N]
//!      [--chaos-drop-every N] [--chaos-delay-every N]
//!      [--chaos-wal-torn-every N] [--chaos-wal-fail-every N]
//!      [--request-deadline-ms MS]
//!      [--trace-sample N] [--slow-ms MS] [--trace-seed N] [--trace-ring N]
//! ```
//!
//! Speaks the length-prefixed frame protocol of `c1p_engine::proto`: one
//! response per request, in order, per connection — `Verdict`/`Error` for
//! `Solve`, `SessionVerdict`/`Error` for `OpenSession`/`PushAtoms`/
//! `SealSession`, `Stats` for `GetStats`, and a plain-text metrics dump
//! for `GetMetrics` (DESIGN.md §11 documents the stable series names).
//!
//! Two server modes share that protocol and the flag surface:
//!
//! * **default (legacy)** — one blocking thread per connection, one
//!   engine (`c1p_net::legacy`). Requests from all connections funnel
//!   into it, so batching, the result cache *and the session table*
//!   amortize across tenants.
//! * **`--event-loop`** — one readiness thread multiplexing every socket
//!   over `poll(2)`, `--shards N` engines each owning a consistent-hash
//!   slice of canonical keys (`c1p_net::event_loop`). Built for
//!   thousands of connections; the legacy mode is retained for
//!   differential testing — both must produce bit-identical verdicts.
//!
//! Admission control answers with exact error frames, never a silent
//! drop: frame size (`TooLarge`, then close), connection count and queue
//! depth (`Overloaded`), a mid-frame stall past `--read-timeout-ms`
//! (`Timeout`, then close; 0 disables), and — event loop only — a reader
//! whose outbox crosses `--outbox-kb` (`Overloaded`, then close). Bind
//! to port 0 for an ephemeral port; the chosen address is printed on
//! stdout (`c1pd listening on ...`) and, with `--port-file`, the bare
//! port is written to the given path for scripts.
//!
//! **Durability** (DESIGN.md §10): `--wal-dir DIR` turns on per-session
//! write-ahead logs (accepted pushes fsynced before acknowledgement),
//! boot-time recovery of live sessions, lazy resume of idle-evicted
//! ones, and — with `--snapshot-ms` — periodic cache snapshots for warm
//! starts. Under `--event-loop --shards N`, shard `i` logs under
//! `DIR/shard-i`. `--wal-fault-after N` is the crash harness's test
//! hook: the N-th append dies mid-write. On SIGTERM/SIGINT the server
//! shuts down gracefully: it stops accepting, drains each connection's
//! in-flight frame (answering it), writes a final snapshot, and exits 0
//! — WALs need no extra flush because every append was already fsynced.
//!
//! **Chaos** (DESIGN.md §12, `--event-loop` only): the `--chaos-*` flags
//! arm a seeded deterministic fault plan. `--chaos-socket-every N`
//! injects a socket fault (error / short read / delay / disconnect)
//! roughly every N-th read and write; `--chaos-kill-every N` panics a
//! shard worker every N-th job batch (it is respawned with WAL
//! recovery); `--chaos-drop-every` / `--chaos-delay-every` drop or delay
//! shard replies; `--chaos-wal-torn-every` / `--chaos-wal-fail-every`
//! tear or refuse WAL appends. `--request-deadline-ms` answers any
//! request still unanswered after MS milliseconds with `Unavailable`
//! (defaulted to 2000 when replies can be dropped, so nothing hangs).
//! Same seed + same schedule ⇒ the same faults fire at the same points.
//!
//! **Tracing** (DESIGN.md §13, both modes): `--trace-sample N` head-
//! samples one request in N (0, the default, turns tracing off
//! entirely); while tracing is on, error replies and requests slower
//! than `--slow-ms` (default 100) are always retained — tail-sampling —
//! and slow ones also log one stderr line. Retained traces live in
//! per-shard rings of `--trace-ring` (default 256) entries, are dumped
//! as JSONL by a `GetTraces` frame, and stamp the latency histogram's
//! buckets with exemplar trace ids. `--trace-seed` makes both the
//! content-derived trace ids and the sampling verdicts reproducible.

use c1p_engine::proto::DEFAULT_MAX_FRAME;
use c1p_engine::EngineConfig;
use c1p_net::fault::FaultPlan;
use c1p_net::metrics::Metrics;
use c1p_net::ServerOpts;
use std::io::{self, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler; polled by the accept/event loop and (at
/// frame boundaries) by every connection.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // std-only signal(2): the handler just flips an AtomicBool, which is
    // async-signal-safe. SIGINT = 2, SIGTERM = 15.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2, on_signal);
        signal(15, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn num_flag(args: &[String], name: &str, default: usize) -> usize {
    flag(args, name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| panic!("{name} takes a number, got {v:?}"))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let defaults = EngineConfig::default();

    // chaos plan (event-loop only): one seed staggers every schedule
    let socket_every = num_flag(&args, "--chaos-socket-every", 0) as u64;
    let drop_every = num_flag(&args, "--chaos-drop-every", 0) as u64;
    let chaos = FaultPlan::seeded(num_flag(&args, "--chaos-seed", 1) as u64)
        .with_read_every(socket_every)
        .with_write_every(socket_every)
        .with_kill_every(num_flag(&args, "--chaos-kill-every", 0) as u64)
        .with_drop_every(drop_every)
        .with_delay_every(num_flag(&args, "--chaos-delay-every", 0) as u64);
    let wal_faults = chaos.wal(
        num_flag(&args, "--chaos-wal-torn-every", 0) as u64,
        num_flag(&args, "--chaos-wal-fail-every", 0) as u64,
    );
    let chaos_armed = !chaos.is_empty() || wal_faults.torn_every > 0 || wal_faults.fail_every > 0;

    let cfg = EngineConfig {
        threads: num_flag(&args, "--threads", 0),
        cache_bytes: num_flag(&args, "--cache-mb", defaults.cache_bytes >> 20) << 20,
        max_batch: num_flag(&args, "--max-batch", defaults.max_batch),
        small_cutoff: num_flag(&args, "--small-cutoff", defaults.small_cutoff),
        max_queue: num_flag(&args, "--max-queue", defaults.max_queue),
        max_atoms: num_flag(&args, "--max-atoms", defaults.max_atoms),
        max_sessions: num_flag(&args, "--max-sessions", defaults.max_sessions),
        session_idle_ms: num_flag(&args, "--session-idle-ms", defaults.session_idle_ms as usize)
            as u64,
        max_session_columns: defaults.max_session_columns,
        max_session_bytes: num_flag(&args, "--max-session-mb", defaults.max_session_bytes >> 20)
            << 20,
        wal_dir: flag(&args, "--wal-dir").map(std::path::PathBuf::from),
        snapshot_interval_ms: num_flag(&args, "--snapshot-ms", 0) as u64,
        wal_fault_after: num_flag(&args, "--wal-fault-after", 0) as u64,
        wal_faults,
    };
    let read_timeout_ms = num_flag(&args, "--read-timeout-ms", 250);
    let opts = ServerOpts {
        max_conns: num_flag(&args, "--max-conns", 64),
        max_frame: num_flag(&args, "--max-frame-mb", DEFAULT_MAX_FRAME >> 20) << 20,
        // 0 disables the mid-frame stall reaper (idle between frames is
        // never reaped in either mode)
        read_timeout: (read_timeout_ms > 0).then(|| Duration::from_millis(read_timeout_ms as u64)),
        outbox_limit: num_flag(&args, "--outbox-kb", 8 << 10) << 10,
        trace: c1p_net::trace::TraceConfig {
            sample_every: num_flag(&args, "--trace-sample", 0) as u64,
            slow_us: num_flag(&args, "--slow-ms", 100) as u64 * 1000,
            seed: num_flag(&args, "--trace-seed", 1) as u64,
            ring_cap: num_flag(&args, "--trace-ring", 256),
        },
    };
    let shards = num_flag(&args, "--shards", 1).max(1);
    let event_loop = args.iter().any(|a| a == "--event-loop");
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:9119".to_string());
    let drain = Duration::from_secs(30);

    if chaos_armed && !event_loop {
        eprintln!("c1pd: --chaos-* flags require --event-loop (supervision lives there)");
        std::process::exit(2);
    }
    // dropped replies would hang their requests without a reaper
    let mut deadline_ms = num_flag(&args, "--request-deadline-ms", 0) as u64;
    if deadline_ms == 0 && drop_every > 0 {
        deadline_ms = 2000;
        eprintln!("c1pd: --chaos-drop-every set; defaulting --request-deadline-ms to 2000");
    }
    let request_deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));

    install_signal_handlers();
    let listener =
        TcpListener::bind(&addr).unwrap_or_else(|e| panic!("c1pd: cannot bind {addr}: {e}"));
    let local = listener.local_addr().expect("bound socket has an address");
    println!("c1pd listening on {local}");
    io::stdout().flush().ok();
    if let Some(path) = flag(&args, "--port-file") {
        std::fs::write(&path, format!("{}\n", local.port()))
            .unwrap_or_else(|e| panic!("c1pd: cannot write {path}: {e}"));
    }

    if event_loop {
        run_event_loop(listener, cfg, opts, shards, drain, chaos, request_deadline);
    } else {
        if shards > 1 {
            eprintln!("c1pd: --shards applies to --event-loop mode; the legacy server is 1 shard");
        }
        let metrics = Arc::new(Metrics::new(1));
        c1p_net::legacy::serve(listener, cfg, &opts, drain, &SHUTDOWN, &metrics)
            .unwrap_or_else(|e| panic!("c1pd: serve failed: {e}"));
    }
    eprintln!("c1pd: shutdown complete");
}

#[cfg(unix)]
fn run_event_loop(
    listener: TcpListener,
    cfg: EngineConfig,
    opts: ServerOpts,
    shards: usize,
    drain: Duration,
    chaos: FaultPlan,
    request_deadline: Option<Duration>,
) {
    let el = c1p_net::event_loop::EventLoopOpts {
        shards,
        server: opts,
        engine_cfg: cfg,
        drain,
        fault: Arc::new(chaos),
        request_deadline,
    };
    let metrics = Arc::new(Metrics::new(shards));
    c1p_net::event_loop::serve(listener, &el, &SHUTDOWN, &metrics)
        .unwrap_or_else(|e| panic!("c1pd: event loop failed: {e}"));
}

#[cfg(not(unix))]
fn run_event_loop(
    _listener: TcpListener,
    _cfg: EngineConfig,
    _opts: ServerOpts,
    _shards: usize,
    _drain: Duration,
    _chaos: FaultPlan,
    _request_deadline: Option<Duration>,
) {
    eprintln!("c1pd: --event-loop needs poll(2); use the default thread-per-connection mode");
    std::process::exit(2);
}

//! The thread-per-connection server (PR 4) as a library — `c1pd`'s
//! default mode, and the reference implementation the event loop is
//! differentially tested against: same flags, same engine, same frames,
//! bit-identical verdicts on the same seeds.
//!
//! One blocking thread per connection, all funnelling into one engine so
//! batching, the result cache and the session table amortize across
//! tenants. Admission control answers with exact error frames at three
//! layers: connection count (`Overloaded`), frame byte cap (`TooLarge`,
//! then close — the stream position is unrecoverable), queue/session
//! depth (`Overloaded`/`TooLarge` per request). The `--read-timeout-ms`
//! stall budget reaps slow-loris peers mid-frame with an exact `Timeout`
//! frame; idle connections between frames live forever.
//!
//! Every path feeds the same [`Metrics`] registry the event loop uses,
//! and `GetMetrics` renders it with this engine as shard 0.

use crate::metrics::Metrics;
use crate::trace::{Finishing, Tracer};
use crate::{engine_error, open_reply, session_reply_traced, ServerOpts};
use c1p_engine::proto::{decode_msg, encode_msg, read_frame_until, write_frame, ErrorCode, Msg};
use c1p_engine::{Engine, EngineConfig};
use std::io::{self, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Runs the thread-per-connection server until `stop` flips, then drains
/// live connections (bounded by `drain`), flushes durability, and
/// returns the engine. `stop` is `'static` because handler threads may
/// outlive the accept loop during the drain.
pub fn serve(
    listener: TcpListener,
    cfg: EngineConfig,
    opts: &ServerOpts,
    drain: Duration,
    stop: &'static AtomicBool,
    metrics: &Arc<Metrics>,
) -> io::Result<Arc<Engine>> {
    // kept for Ping health probes after `cfg` moves into the engine
    let wal_dir: Arc<Option<std::path::PathBuf>> = Arc::new(cfg.wal_dir.clone());
    metrics.set_mode("legacy");
    // one engine ⇒ one retention ring (the event loop has one per shard)
    let tracer = Arc::new(Tracer::new(opts.trace, 1));
    let engine = Arc::new(Engine::new(cfg));
    // nonblocking accept so the loop can notice `stop` between
    // connections — a blocking accept would pin the process until one
    // more client happened to connect
    listener.set_nonblocking(true)?;
    let active = Arc::new(AtomicUsize::new(0));
    let opts = opts.clone();
    while !stop.load(Ordering::Acquire) {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
                continue;
            }
            Err(e) => {
                eprintln!("c1pd: accept failed: {e}");
                continue;
            }
        };
        if active.load(Ordering::Acquire) >= opts.max_conns {
            metrics.connections_refused_total.inc();
            refuse(stream);
            continue;
        }
        active.fetch_add(1, Ordering::AcqRel);
        metrics.connections_accepted_total.inc();
        metrics.connections_open.inc();
        let engine = Arc::clone(&engine);
        let active = Arc::clone(&active);
        let metrics = Arc::clone(metrics);
        let opts = opts.clone();
        let wal_dir = Arc::clone(&wal_dir);
        let tracer = Arc::clone(&tracer);
        thread::spawn(move || {
            let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_default();
            if let Err(e) =
                handle_conn(stream, &engine, &opts, stop, &metrics, (*wal_dir).as_deref(), &tracer)
            {
                // benign disconnects are the common case; log the rest
                if e.kind() != io::ErrorKind::UnexpectedEof
                    && e.kind() != io::ErrorKind::ConnectionReset
                {
                    eprintln!("c1pd: connection {peer}: {e}");
                }
            }
            metrics.connections_open.dec();
            metrics.disconnects_total.inc();
            active.fetch_sub(1, Ordering::AcqRel);
        });
    }

    // graceful drain: the listener is closed (drop), live connections
    // notice `stop` at their next frame boundary — the frame they are
    // inside is read fully, answered, and only then does the handler exit
    drop(listener);
    eprintln!("c1pd: shutting down, draining {} connection(s)", active.load(Ordering::Acquire));
    let deadline = Instant::now() + drain;
    while active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(25));
    }
    // WAL records were fsynced at append time; the final snapshot makes
    // the next boot warm from the first request
    engine.flush_durability();
    Ok(engine)
}

/// Best-effort `Overloaded` error frame to a refused connection.
fn refuse(stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    let msg = Msg::Error {
        id: 0,
        code: ErrorCode::Overloaded,
        message: "connection limit reached".into(),
    };
    let _ = write_frame(&mut w, &encode_msg(&msg));
    let _ = w.flush();
}

#[allow(clippy::too_many_arguments)]
fn handle_conn(
    stream: TcpStream,
    engine: &Engine,
    opts: &ServerOpts,
    stop: &AtomicBool,
    metrics: &Metrics,
    wal_dir: Option<&std::path::Path>,
    tracer: &Tracer,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // the socket timeout is the polling tick: it lets the frame reader
    // check `stop` between frames and the stall budget inside one, so it
    // must not exceed either
    let tick =
        opts.read_timeout.map_or(Duration::from_millis(250), |b| b.min(Duration::from_millis(250)));
    stream.set_read_timeout(Some(tick.max(Duration::from_millis(5)))).ok();
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    let send = |writer: &mut BufWriter<TcpStream>, reply: &Msg| -> io::Result<()> {
        let payload = encode_msg(reply);
        write_frame(writer, &payload)?;
        writer.flush()?;
        metrics.frames_written_total.inc();
        metrics.bytes_written_total.add(payload.len() as u64 + 4);
        Ok(())
    };
    loop {
        let payload = match read_frame_until(&mut reader, opts.max_frame, stop, opts.read_timeout) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            // An over-cap frame length is admission control, not line
            // noise: answer with an exact TooLarge error frame before
            // closing (the stream position is unrecoverable, so the
            // connection cannot continue).
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                metrics.oversize_frames_total.inc();
                let reply = Msg::Error { id: 0, code: ErrorCode::TooLarge, message: e.to_string() };
                send(&mut writer, &reply)?;
                return Ok(());
            }
            // the slow-loris reaper: a partial frame stalled past the
            // budget gets an exact Timeout frame, then the close
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                metrics.read_timeout_disconnects_total.inc();
                let budget = opts.read_timeout.expect("TimedOut implies a budget");
                let reply = Msg::Error {
                    id: 0,
                    code: ErrorCode::Timeout,
                    message: format!(
                        "stalled mid-frame past the {} ms read-timeout budget",
                        budget.as_millis()
                    ),
                };
                send(&mut writer, &reply)?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        metrics.frames_read_total.inc();
        metrics.bytes_read_total.add(payload.len() as u64 + 4);
        let t0 = Instant::now();
        metrics.queue_depth.inc();
        metrics.shards[0].jobs_total.inc();
        metrics.shards[0].queue_depth.inc();
        // trace epoch = frame arrival, as in the event loop; decode is
        // hoisted out of the match so its span covers exactly the parse
        let mut tb = tracer.begin(&payload);
        let decoded = decode_msg(&payload);
        // this mode has no dispatcher-side admission checks (queue and
        // size caps live inside `Engine::submit`), so the admission span
        // is an honest zero-length marker at the decode boundary
        if let Some(b) = tb.as_ref() {
            b.req.record("decode", 0);
            b.req.record("admission", b.req.now_us());
        }
        let reply = match decoded {
            Ok(Msg::Solve { id, ens }) => {
                let trace = tb.as_mut().map(|b| {
                    b.id = id;
                    b.kind = "solve";
                    Arc::clone(&b.req)
                });
                match engine.submit_traced(ens, trace) {
                    Ok(ticket) => match ticket.wait() {
                        Ok(verdict) => Msg::Verdict { id, verdict: verdict.to_wire() },
                        Err(e) => engine_error(id, e),
                    },
                    Err(e) => engine_error(id, e),
                }
            }
            Ok(Msg::OpenSession { id, n_atoms }) => {
                if let Some(b) = tb.as_mut() {
                    b.id = id;
                    b.kind = "open";
                }
                match engine.open_session(n_atoms as usize) {
                    Ok(session) => open_reply(id, session),
                    Err(e) => engine_error(id, e),
                }
            }
            Ok(
                msg @ (Msg::PushAtoms { .. } | Msg::SealSession { .. } | Msg::QuerySession { .. }),
            ) => {
                let (id, session) = match &msg {
                    Msg::PushAtoms { id, session, .. }
                    | Msg::SealSession { id, session }
                    | Msg::QuerySession { id, session } => (*id, *session),
                    _ => unreachable!(),
                };
                if matches!(msg, Msg::QuerySession { .. }) {
                    metrics.retries_total.inc();
                }
                let trace = tb.as_mut().map(|b| {
                    b.id = id;
                    b.kind = "session";
                    Arc::clone(&b.req)
                });
                // single engine: the public handle is the local one
                session_reply_traced(engine, &msg, session, session, trace.as_deref())
            }
            Ok(Msg::Ping { id }) => Msg::Pong {
                id,
                wal: crate::wal_health(wal_dir),
                // one engine, always on this thread: live by construction
                shards: vec![c1p_engine::proto::ShardHealth { live: true, degraded: false }],
            },
            Ok(Msg::GetStats) => Msg::Stats { json: engine.stats().to_json() },
            Ok(Msg::GetMetrics) => Msg::Metrics { text: metrics.render(&[engine.stats()]) },
            Ok(Msg::GetTraces) => Msg::Traces { jsonl: tracer.dump() },
            Ok(_) => Msg::Error {
                id: 0,
                code: ErrorCode::Malformed,
                message: "unexpected message kind for a server".into(),
            },
            Err(e) => {
                metrics.malformed_frames_total.inc();
                Msg::Error { id: 0, code: ErrorCode::Malformed, message: e.to_string() }
            }
        };
        metrics.queue_depth.dec();
        metrics.shards[0].queue_depth.dec();
        let latency_us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
        metrics.frame_latency_us.observe_us(latency_us);
        // the flush span covers the blocking write+flush; the trace
        // finishes once the bytes are handed to the socket
        let fin = tb.map(|b| {
            let error = matches!(reply, Msg::Error { .. });
            let flush_start_us = b.req.now_us();
            Finishing { b, latency_us, error, flush_start_us }
        });
        send(&mut writer, &reply)?;
        if let Some(f) = fin {
            tracer.finish(f, metrics);
        }
    }
}

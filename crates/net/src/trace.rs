//! End-to-end request tracing: ids, sampling, retention rings, JSONL
//! (DESIGN.md §13).
//!
//! The engine side ([`c1p_engine::trace`]) records spans; this module
//! decides *which* requests get a recorder and *which* finished traces
//! are worth keeping:
//!
//! * **Trace ids are content-derived.** `splitmix64(fnv1a64(payload) ^
//!   seed)` — a function of the request bytes and the server's
//!   `--trace-seed`, not of arrival time or connection identity. The
//!   same seeded request carries the same id through the legacy and
//!   event-loop servers, which is what makes the cross-mode stability
//!   test (and cross-mode debugging) possible.
//! * **Head-sampling is deterministic.** A request is head-sampled iff
//!   `splitmix64(trace_id ^ seed) % sample_every == 0`; `--trace-sample
//!   0` disables tracing entirely and every hook collapses to an
//!   `Option::None` check.
//! * **Tail-sampling keeps the interesting ones.** While tracing is on,
//!   *every* request records spans; at finish, error replies and
//!   requests slower than `--slow-ms` are always retained, others only
//!   if head-sampled. Slow traces also go to a stderr log line.
//! * **Retention is ring-buffered per shard, two-tiered.** When a ring
//!   is full, the oldest head-sampled entry is evicted first; tail-kept
//!   (slow/error) entries are only displaced by newer entries once no
//!   head-sampled ones remain, and an incoming head sample is dropped
//!   rather than displacing them. Evicting a trace clears any latency
//!   histogram exemplar naming it, so exemplars always point at a
//!   retrievable trace.

use crate::metrics::Metrics;
use c1p_engine::trace::ReqTrace;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Tracing knobs, carried in [`crate::ServerOpts`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Head-sample one request in `sample_every`; `0` disables tracing.
    pub sample_every: u64,
    /// Requests slower than this (decode start → outbox flush) are
    /// tail-sampled and logged to stderr regardless of head-sampling.
    pub slow_us: u64,
    /// Seed for trace-id derivation and the head-sampling hash.
    pub seed: u64,
    /// Retained traces per shard ring.
    pub ring_cap: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { sample_every: 0, slow_us: 100_000, seed: 1, ring_cap: 256 }
    }
}

/// FNV-1a over `bytes` — the same hash family the router uses.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer — decorrelates the structured FNV output.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic, content-derived trace id of a request payload.
pub fn trace_id_for(payload: &[u8], seed: u64) -> u64 {
    splitmix64(fnv1a64(payload) ^ seed)
}

/// Why a trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keep {
    /// Won the 1-in-N head-sampling lottery.
    Head,
    /// Exceeded the `--slow-ms` budget (tail-sampled; protected).
    Slow,
    /// Finished with an error reply (tail-sampled; protected).
    Error,
}

impl Keep {
    fn as_str(self) -> &'static str {
        match self {
            Keep::Head => "head",
            Keep::Slow => "slow",
            Keep::Error => "error",
        }
    }
}

/// A live request's trace context, created at frame arrival and carried
/// through the pending map to the reply path.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    /// The shared span recorder (engine hooks record into it).
    pub req: Arc<ReqTrace>,
    /// Content-derived trace id.
    pub trace_id: u64,
    /// Client-chosen request id (0 until decode names one).
    pub id: u64,
    /// Request kind label (`solve`, `open`, `session`, `inline`).
    pub kind: &'static str,
    /// Ring the finished trace lands in (owning shard; 0 for inline
    /// replies and admission rejects).
    pub shard: usize,
    /// Head-sampling verdict, precomputed at `begin`.
    pub head_sampled: bool,
}

/// Everything the flush pass needs to finish a trace once its reply
/// frame has left the socket.
#[derive(Debug)]
pub struct Finishing {
    /// The request's trace context.
    pub b: TraceBuilder,
    /// Service latency (parse → reply queued) — the value the latency
    /// histogram observed; the exemplar must land in the same bucket.
    pub latency_us: u64,
    /// The reply was an `Error` frame.
    pub error: bool,
    /// `flush` span start: when the reply was queued on the outbox.
    pub flush_start_us: u64,
}

/// One retained trace: the pre-rendered JSONL line plus what eviction
/// and the exemplar invariant need.
#[derive(Debug)]
struct Retained {
    trace_id: u64,
    keep: Keep,
    line: String,
}

/// Stable ordering rank for lifecycle span names — ties on `start_us`
/// (common for zero-length spans) sort in pipeline order, keeping the
/// rendered span sequence deterministic across runs and server modes.
fn rank(name: &str) -> usize {
    const ORDER: [&str; 15] = [
        "request",
        "decode",
        "admission",
        "queue",
        "mailbox",
        "cache",
        "coalesce",
        "solve",
        "solve/partition",
        "solve/prepare",
        "solve/decompose",
        "solve/align",
        "solve/merge",
        "wal",
        "flush",
    ];
    ORDER.iter().position(|&n| n == name).unwrap_or(ORDER.len())
}

/// Parent of a span, by name: solver phases nest under `solve`,
/// everything else under the implicit `request` root.
fn parent_of(name: &str) -> &'static str {
    if name.starts_with("solve/") {
        "solve"
    } else {
        "request"
    }
}

/// The per-server tracer: sampling policy + per-shard retention rings.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    rings: Vec<Mutex<VecDeque<Retained>>>,
}

impl Tracer {
    /// A tracer for `shards` rings (legacy mode passes 1).
    pub fn new(cfg: TraceConfig, shards: usize) -> Tracer {
        Tracer { cfg, rings: (0..shards.max(1)).map(|_| Mutex::new(VecDeque::new())).collect() }
    }

    /// Whether any request gets a recorder at all.
    pub fn enabled(&self) -> bool {
        self.cfg.sample_every > 0
    }

    /// The policy this tracer runs.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Starts a trace for a raw frame payload: derives the id, rolls the
    /// head-sampling dice, and stamps the epoch. `None` when tracing is
    /// off — the caller threads the `Option` through and never branches
    /// again.
    pub fn begin(&self, payload: &[u8]) -> Option<TraceBuilder> {
        if !self.enabled() {
            return None;
        }
        let trace_id = trace_id_for(payload, self.cfg.seed);
        Some(TraceBuilder {
            req: Arc::new(ReqTrace::new()),
            trace_id,
            id: 0,
            kind: "inline",
            shard: 0,
            head_sampled: splitmix64(trace_id ^ self.cfg.seed)
                .is_multiple_of(self.cfg.sample_every),
        })
    }

    /// Finishes a trace after its reply bytes hit the socket: records
    /// the `flush` span, applies the retention policy, renders the JSONL
    /// line into the owning shard's ring, maintains the exemplar
    /// invariant, and emits the stderr slow log.
    pub fn finish(&self, f: Finishing, metrics: &Metrics) {
        f.b.req.record("flush", f.flush_start_us);
        let total_us = f.b.req.now_us();
        let keep = if f.error {
            Keep::Error
        } else if total_us >= self.cfg.slow_us {
            Keep::Slow
        } else if f.b.head_sampled {
            Keep::Head
        } else {
            metrics.traces_dropped_total.inc();
            return;
        };
        let line = render_jsonl(&f, keep, total_us);
        if keep == Keep::Slow {
            eprintln!(
                "c1pd: slow request trace_id={:016x} kind={} id={} total_us={total_us} \
                 (over the {}us budget; retained for GetTraces)",
                f.b.trace_id, f.b.kind, f.b.id, self.cfg.slow_us
            );
        }
        let ring_ix = f.b.shard % self.rings.len();
        let stored = {
            let mut ring = self.rings[ring_ix].lock().expect("trace ring lock");
            push_two_tier(
                &mut ring,
                self.cfg.ring_cap.max(1),
                Retained { trace_id: f.b.trace_id, keep, line },
            )
        };
        match stored {
            Push::Stored { evicted } => {
                for id in evicted {
                    metrics.frame_latency_us.clear_exemplar(id);
                }
                metrics.traces_retained_total.inc();
                metrics.frame_latency_us.attach_exemplar(f.latency_us, f.b.trace_id);
            }
            Push::RejectedIncoming => {
                // ring full of protected tail-kept traces: the head
                // sample loses, and never gets an exemplar
                metrics.traces_dropped_total.inc();
            }
        }
    }

    /// Drains nothing, copies everything: the JSONL dump served by
    /// `GetTraces` — shard rings in order, oldest first within each.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for ring in &self.rings {
            for r in ring.lock().expect("trace ring lock").iter() {
                out.push_str(&r.line);
                out.push('\n');
            }
        }
        out
    }

    /// The retained trace ids, per ring (test/driver helper).
    pub fn retained_ids(&self) -> Vec<Vec<u64>> {
        self.rings
            .iter()
            .map(|r| r.lock().expect("trace ring lock").iter().map(|e| e.trace_id).collect())
            .collect()
    }
}

enum Push {
    Stored { evicted: Vec<u64> },
    RejectedIncoming,
}

/// Two-tier ring insert: head-sampled entries evict oldest-first; slow /
/// error entries are protected and only displaced (oldest-first) by
/// newer entries once no head-sampled entry remains.
fn push_two_tier(ring: &mut VecDeque<Retained>, cap: usize, r: Retained) -> Push {
    let mut evicted = Vec::new();
    if ring.len() >= cap {
        if let Some(pos) = ring.iter().position(|e| e.keep == Keep::Head) {
            evicted.push(ring.remove(pos).expect("position in bounds").trace_id);
        } else if r.keep != Keep::Head {
            evicted.push(ring.pop_front().expect("nonempty full ring").trace_id);
        } else {
            return Push::RejectedIncoming;
        }
    }
    ring.push_back(r);
    Push::Stored { evicted }
}

/// Renders one finished trace as a JSONL object. Spans are sorted by
/// `(start_us, rank)` and carry their parent by name; the `request` root
/// (offset 0 → total) is synthesized first.
fn render_jsonl(f: &Finishing, keep: Keep, total_us: u64) -> String {
    let mut spans = f.b.req.take();
    spans.sort_by_key(|s| (s.start_us, rank(s.name)));
    let mut line = String::with_capacity(256 + spans.len() * 64);
    let _ = write!(
        line,
        "{{\"trace_id\":\"{:016x}\",\"id\":{},\"kind\":\"{}\",\"keep\":\"{}\",\
         \"error\":{},\"shard\":{},\"total_us\":{},\"spans\":[\
         {{\"name\":\"request\",\"parent\":null,\"start_us\":0,\"end_us\":{}}}",
        f.b.trace_id,
        f.b.id,
        f.b.kind,
        keep.as_str(),
        f.error,
        f.b.shard,
        total_us,
        total_us,
    );
    for s in &spans {
        let _ = write!(
            line,
            ",{{\"name\":\"{}\",\"parent\":\"{}\",\"start_us\":{},\"end_us\":{}}}",
            s.name,
            parent_of(s.name),
            s.start_us,
            s.end_us.min(total_us),
        );
    }
    line.push_str("]}");
    line
}

/// Projects a rendered JSONL trace line onto its mode-invariant
/// structure: `trace_id kind span>parent ...`. Physical timings differ
/// between the legacy and event-loop servers; the id, kind, span names,
/// parents, and order do not — this is the byte-stable projection the
/// cross-mode test compares (DESIGN.md §13).
pub fn structure(line: &str) -> Option<String> {
    let field = |key: &str, from: &str| -> Option<String> {
        let at = from.find(&format!("\"{key}\":"))?;
        let rest = &from[at + key.len() + 3..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find(['"', ',', '}'])?;
        Some(rest[..end].to_string())
    };
    let tid = field("trace_id", line)?;
    let kind = field("kind", line)?;
    let mut out = format!("{tid} {kind}");
    for chunk in line.split("{\"name\":\"").skip(1) {
        let name_end = chunk.find('"')?;
        let name = &chunk[..name_end];
        let parent = field("parent", chunk).unwrap_or_else(|| "null".into());
        let _ = write!(out, " {name}>{parent}");
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(sample_every: u64, slow_us: u64, cap: usize) -> Tracer {
        Tracer::new(TraceConfig { sample_every, slow_us, seed: 7, ring_cap: cap }, 1)
    }

    fn finishing(t: &Tracer, payload: &[u8], error: bool) -> Finishing {
        let b = t.begin(payload).expect("tracing on");
        let start = b.req.now_us();
        b.req.record("decode", start);
        Finishing { b, latency_us: 10, error, flush_start_us: 0 }
    }

    #[test]
    fn trace_ids_are_content_derived_and_seeded() {
        assert_eq!(trace_id_for(b"abc", 1), trace_id_for(b"abc", 1));
        assert_ne!(trace_id_for(b"abc", 1), trace_id_for(b"abc", 2));
        assert_ne!(trace_id_for(b"abc", 1), trace_id_for(b"abd", 1));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let t1 = tracer(4, u64::MAX, 64);
        let t2 = tracer(4, u64::MAX, 64);
        let verdicts: Vec<bool> =
            (0..200u32).map(|i| t1.begin(&i.to_le_bytes()).unwrap().head_sampled).collect();
        let again: Vec<bool> =
            (0..200u32).map(|i| t2.begin(&i.to_le_bytes()).unwrap().head_sampled).collect();
        assert_eq!(verdicts, again, "same seed, same payloads, same verdicts");
        let hits = verdicts.iter().filter(|&&v| v).count();
        assert!(hits > 10 && hits < 150, "1-in-4 sampling wildly off: {hits}/200");
        let other = Tracer::new(
            TraceConfig { sample_every: 4, slow_us: u64::MAX, seed: 8, ring_cap: 64 },
            1,
        );
        let reseeded: Vec<bool> =
            (0..200u32).map(|i| other.begin(&i.to_le_bytes()).unwrap().head_sampled).collect();
        assert_ne!(verdicts, reseeded, "a different seed picks a different subset");
    }

    #[test]
    fn sample_every_zero_disables_tracing() {
        let t = tracer(0, 0, 64);
        assert!(!t.enabled());
        assert!(t.begin(b"x").is_none());
    }

    #[test]
    fn ring_overflow_keeps_newest_and_all_tail_kept() {
        let m = Metrics::new(1);
        // sample everything, nothing is slow: all Head entries
        let t = tracer(1, u64::MAX, 3);
        for i in 0..5u32 {
            t.finish(finishing(&t, &i.to_le_bytes(), false), &m);
        }
        let ids = t.retained_ids().remove(0);
        assert_eq!(ids.len(), 3, "ring capped");
        let newest = trace_id_for(&4u32.to_le_bytes(), 7);
        assert_eq!(*ids.last().unwrap(), newest, "newest survives");
        // two protected error traces displace head entries, never each other
        let e1 = finishing(&t, b"err-1", true);
        let (e1_id, e2_id) = (e1.b.trace_id, trace_id_for(b"err-2", 7));
        t.finish(e1, &m);
        t.finish(finishing(&t, b"err-2", true), &m);
        // flood with head samples: the errors must survive
        for i in 10..30u32 {
            t.finish(finishing(&t, &i.to_le_bytes(), false), &m);
        }
        let ids = t.retained_ids().remove(0);
        assert_eq!(ids.len(), 3);
        assert!(ids.contains(&e1_id) && ids.contains(&e2_id), "tail-kept evicted: {ids:x?}");
        // a ring of only protected entries rejects incoming head samples
        t.finish(finishing(&t, b"err-3", true), &m);
        let before = t.retained_ids().remove(0);
        assert!(before.iter().all(|id| *id != trace_id_for(&99u32.to_le_bytes(), 7)));
        t.finish(finishing(&t, &99u32.to_le_bytes(), false), &m);
        assert_eq!(t.retained_ids().remove(0), before, "head sample displaced a protected trace");
        // but a newer protected entry displaces the oldest protected one
        t.finish(finishing(&t, b"err-4", true), &m);
        let ids = t.retained_ids().remove(0);
        assert!(!ids.contains(&e1_id), "oldest tail-kept should rotate out");
        assert!(ids.contains(&trace_id_for(b"err-4", 7)));
    }

    #[test]
    fn exemplars_always_point_at_a_retained_trace() {
        let m = Metrics::new(1);
        let t = tracer(1, u64::MAX, 2);
        for i in 0..20u32 {
            t.finish(finishing(&t, &i.to_le_bytes(), i % 3 == 0), &m);
            let dump = m.render(&[]);
            let retained: Vec<u64> = t.retained_ids().remove(0);
            for l in dump.lines().filter(|l| l.contains("trace_id=\"")) {
                let hex = l.split("trace_id=\"").nth(1).unwrap().split('"').next().unwrap();
                let id = u64::from_str_radix(hex, 16).unwrap();
                assert!(
                    retained.contains(&id),
                    "exemplar {id:x} not retained (have {retained:x?})"
                );
            }
        }
        assert!(m.traces_retained_total.get() > 0);
    }

    #[test]
    fn jsonl_has_root_parents_and_sorted_spans() {
        let m = Metrics::new(1);
        let t = tracer(1, u64::MAX, 8);
        let b = t.begin(b"payload").unwrap();
        b.req.record_span("solve", 10, 50);
        b.req.record_span("solve/partition", 10, 20);
        b.req.record_span("decode", 0, 2);
        t.finish(Finishing { b, latency_us: 50, error: false, flush_start_us: 50 }, &m);
        let dump = t.dump();
        let line = dump.lines().next().unwrap();
        assert!(line.contains("\"name\":\"request\",\"parent\":null"));
        assert!(line.contains("\"name\":\"solve/partition\",\"parent\":\"solve\""));
        assert!(line.contains("\"name\":\"decode\",\"parent\":\"request\""));
        let decode_at = line.find("\"decode\"").unwrap();
        let solve_at = line.find("\"solve\"").unwrap();
        let part_at = line.find("\"solve/partition\"").unwrap();
        assert!(decode_at < solve_at && solve_at < part_at, "spans out of order: {line}");
        let s = structure(line).unwrap();
        assert!(
            s.ends_with(
                "inline request>null decode>request solve>request solve/partition>solve \
                 flush>request"
            ),
            "structure projection: {s}"
        );
    }
}

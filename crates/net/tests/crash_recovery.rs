//! Crash recovery over a real `c1pd` process: SIGKILL mid-stream, the
//! mid-append fault hook, and graceful SIGTERM — in every case the next
//! process generation must recover the durable state exactly (sessions
//! seal bit-identical to a one-shot solve, snapshots warm the cache) and
//! never quarantine an honestly-written log.

use c1p_cert::solve_certified;
use c1p_engine::proto::{decode_msg, encode_msg, read_frame, write_frame, Msg, DEFAULT_MAX_FRAME};
use c1p_matrix::generate::{append_stream, AppendStream};
use c1p_matrix::io::WireVerdict;
use c1p_matrix::{Atom, Ensemble};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

static SEQ: AtomicU32 = AtomicU32::new(0);

fn tdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "c1pd-crash-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("test dir");
    d
}

/// A durable `c1pd` generation over `wal_dir`; SIGKILLed on drop unless
/// already reaped.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start(wal_dir: &Path, extra_args: &[&str]) -> Server {
        let port_file = wal_dir.join(format!("port-{}", SEQ.fetch_add(1, Ordering::Relaxed)));
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_c1pd"))
            .args(["--addr", "127.0.0.1:0", "--port-file"])
            .arg(&port_file)
            .arg("--wal-dir")
            .arg(wal_dir)
            .args(["--threads", "2"])
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn c1pd");
        let t0 = Instant::now();
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "c1pd never wrote its port");
            std::thread::sleep(Duration::from_millis(20));
        };
        let _ = std::fs::remove_file(&port_file);
        Server { child, addr: format!("127.0.0.1:{port}") }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("connect to c1pd")
    }

    /// SIGKILL: the process gets no chance to flush anything.
    fn kill9(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::mem::forget(self);
    }

    /// SIGTERM, then the exit status of the graceful shutdown.
    fn terminate(mut self) -> std::process::ExitStatus {
        let ok = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("spawn kill")
            .success();
        assert!(ok, "kill -TERM failed");
        let status = self.child.wait().expect("wait for c1pd");
        std::mem::forget(self);
        status
    }

    /// Waits for the child to die on its own (the injected fault aborts).
    fn reap(mut self) {
        let t0 = Instant::now();
        loop {
            if self.child.try_wait().expect("try_wait").is_some() {
                std::mem::forget(self);
                return;
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "fault never fired");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One round trip; `Err` when the server died under the request.
fn try_rpc(stream: &TcpStream, msg: &Msg) -> io::Result<Msg> {
    let mut writer = BufWriter::new(stream.try_clone()?);
    write_frame(&mut writer, &encode_msg(msg))?;
    writer.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
    decode_msg(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn rpc(stream: &TcpStream, msg: &Msg) -> Msg {
    try_rpc(stream, msg).expect("server must answer")
}

/// Scans one integer counter out of the `Stats` frame's flat JSON.
fn stat(server: &Server, key: &str) -> i64 {
    let conn = server.connect();
    let Msg::Stats { json } = rpc(&conn, &Msg::GetStats) else {
        panic!("expected a Stats frame");
    };
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).unwrap_or_else(|| panic!("{key} missing in {json}"));
    let digits: String = json[at + needle.len()..]
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().expect("integer stat")
}

fn open(conn: &TcpStream, n_atoms: usize) -> u64 {
    match rpc(conn, &Msg::OpenSession { id: 1, n_atoms: n_atoms as u64 }) {
        Msg::SessionVerdict { session, .. } => session,
        other => panic!("expected a SessionVerdict, got {other:?}"),
    }
}

fn push_accept(conn: &TcpStream, session: u64, delta: Ensemble) {
    match rpc(conn, &Msg::PushAtoms { id: 2, session, delta }) {
        Msg::SessionVerdict { verdict: WireVerdict::Accept { .. }, .. } => {}
        other => panic!("expected an accepted push, got {other:?}"),
    }
}

/// Seals and asserts the order equals a one-shot `solve_certified` of the
/// stream's full column set.
fn seal_and_check(conn: &TcpStream, session: u64, stream: &AppendStream) {
    let cols: Vec<Vec<Atom>> = stream.pushes.iter().flatten().cloned().collect();
    let expect = solve_certified(&Ensemble::from_columns(stream.n_atoms, cols).unwrap())
        .expect("accept-only stream");
    match rpc(conn, &Msg::SealSession { id: 3, session }) {
        Msg::SessionVerdict { verdict: WireVerdict::Accept { order }, .. } => {
            assert_eq!(order, expect, "seal after recovery differs from one-shot")
        }
        other => panic!("expected a sealed Accept, got {other:?}"),
    }
}

#[test]
fn sigkill_mid_stream_recovers_and_seals_bit_identical() {
    let dir = tdir("kill9");
    let stream = append_stream(72, 4, 6, 31);
    let split = 3;

    let gen0 = Server::start(&dir, &[]);
    let conn = gen0.connect();
    let session = open(&conn, stream.n_atoms);
    for k in 0..split {
        push_accept(&conn, session, stream.push_ensemble(k));
    }
    drop(conn);
    gen0.kill9(); // every acked push was fsynced; nothing else survives

    let gen1 = Server::start(&dir, &[]);
    assert_eq!(stat(&gen1, "recovered_sessions"), 1, "the session is back at boot");
    assert_eq!(stat(&gen1, "quarantined_wals"), 0, "an honest log is never quarantined");
    let conn = gen1.connect();
    for k in split..stream.pushes.len() {
        push_accept(&conn, session, stream.push_ensemble(k));
    }
    seal_and_check(&conn, session, &stream);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_append_fault_loses_only_the_unacked_push() {
    let dir = tdir("fault");
    let stream = append_stream(64, 4, 5, 37);

    // the 2nd WAL append dies mid-write: push 0 is acked and durable,
    // push 1 is torn on disk and the client provably holds no ack for it
    let gen0 = Server::start(&dir, &["--wal-fault-after", "2"]);
    let conn = gen0.connect();
    let session = open(&conn, stream.n_atoms);
    push_accept(&conn, session, stream.push_ensemble(0));
    let died = try_rpc(&conn, &Msg::PushAtoms { id: 9, session, delta: stream.push_ensemble(1) });
    assert!(died.is_err(), "the faulted append must abort before acknowledging");
    drop(conn);
    gen0.reap();

    // recovery truncates the torn record; the retry is exact, not guessed
    let gen1 = Server::start(&dir, &[]);
    assert_eq!(stat(&gen1, "recovered_sessions"), 1);
    assert_eq!(stat(&gen1, "quarantined_wals"), 0, "a torn tail is a truncation, not damage");
    let conn = gen1.connect();
    for k in 1..stream.pushes.len() {
        push_accept(&conn, session, stream.push_ensemble(k));
    }
    seal_and_check(&conn, session, &stream);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_drains_gracefully_and_the_next_boot_starts_warm() {
    let dir = tdir("term");
    let probe = append_stream(72, 4, 3, 41).final_ensemble();

    let gen0 = Server::start(&dir, &[]);
    let conn = gen0.connect();
    assert!(matches!(rpc(&conn, &Msg::Solve { id: 1, ens: probe.clone() }), Msg::Verdict { .. }));
    drop(conn);
    let status = gen0.terminate();
    assert!(status.success(), "graceful shutdown exits 0, got {status}");

    // the shutdown-time snapshot warms the restarted cache: the very
    // first solve of the same instance is a hit attributed to it
    let gen1 = Server::start(&dir, &[]);
    let conn = gen1.connect();
    assert!(matches!(rpc(&conn, &Msg::Solve { id: 2, ens: probe }), Msg::Verdict { .. }));
    assert_eq!(stat(&gen1, "warm_start_hits"), 1, "first post-restart solve answered warm");
    assert_eq!(stat(&gen1, "misses"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

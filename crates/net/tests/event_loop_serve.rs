//! The event-loop server against its legacy twin, over real TCP: same
//! schedule, bit-identical verdict frames; sessions spread across shards
//! without changing a single verdict; pipelined requests answered
//! strictly in order; durability counters visible in the metrics dump.

use c1p_engine::proto::{decode_msg, encode_msg, read_frame, write_frame, Msg, DEFAULT_MAX_FRAME};
use c1p_matrix::generate::{append_stream, mixed_schedule, AppendStream, MixedSchedule};
use c1p_matrix::io::WireVerdict;
use c1p_matrix::Ensemble;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

static SEQ: AtomicU32 = AtomicU32::new(0);

/// A live `c1pd` child on an ephemeral port; killed on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start(extra_args: &[&str]) -> Server {
        let port_file = std::env::temp_dir().join(format!(
            "c1pd-elserve-{}-{}.port",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_c1pd"))
            .args(["--addr", "127.0.0.1:0", "--port-file"])
            .arg(&port_file)
            .args(["--threads", "1"])
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn c1pd");
        let t0 = Instant::now();
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "c1pd never wrote its port");
            std::thread::sleep(Duration::from_millis(20));
        };
        let _ = std::fs::remove_file(&port_file);
        Server { child, addr: format!("127.0.0.1:{port}") }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(&self.addr).expect("connect to c1pd");
        s.set_nodelay(true).ok();
        s
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn rpc(stream: &TcpStream, msg: &Msg) -> Msg {
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    write_frame(&mut writer, &encode_msg(msg)).expect("write frame");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("read frame")
        .expect("server must answer, not drop");
    decode_msg(&payload).expect("decodable response")
}

/// Runs the schedule through one server, returning the raw encoded reply
/// payload per request — the unit of the bit-identical comparison.
fn run_schedule(server: &Server, schedule: &[Ensemble]) -> Vec<Vec<u8>> {
    let conn = server.connect();
    let mut writer = BufWriter::new(conn.try_clone().expect("clone"));
    let mut reader = BufReader::new(conn);
    schedule
        .iter()
        .enumerate()
        .map(|(i, ens)| {
            let req = Msg::Solve { id: i as u64, ens: ens.clone() };
            write_frame(&mut writer, &encode_msg(&req)).expect("write");
            writer.flush().expect("flush");
            read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("read").expect("reply")
        })
        .collect()
}

#[test]
fn event_loop_verdicts_are_bit_identical_to_legacy() {
    let schedule = mixed_schedule(MixedSchedule {
        requests: 60,
        seed: 41,
        dup_every: 3,
        reject_every: 4,
        n_lo: 24,
        n_hi: 72,
    });
    let legacy = Server::start(&[]);
    let sharded = Server::start(&["--event-loop", "--shards", "3"]);
    let a = run_schedule(&legacy, &schedule);
    let b = run_schedule(&sharded, &schedule);
    assert_eq!(a.len(), b.len());
    for (i, (la, lb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(la, lb, "request {i}: legacy and event-loop replies differ at the byte level");
    }
}

#[test]
fn pipelined_requests_come_back_in_request_order() {
    let server = Server::start(&["--event-loop", "--shards", "4"]);
    let schedule = mixed_schedule(MixedSchedule {
        requests: 48,
        seed: 7,
        dup_every: 5,
        reject_every: 3,
        n_lo: 24,
        n_hi: 64,
    });
    let conn = server.connect();
    // write every frame before reading anything: the shards will finish
    // out of order, the connection must not
    let mut writer = BufWriter::new(conn.try_clone().expect("clone"));
    for (i, ens) in schedule.iter().enumerate() {
        let req = Msg::Solve { id: i as u64, ens: ens.clone() };
        write_frame(&mut writer, &encode_msg(&req)).expect("write");
    }
    writer.flush().expect("flush");
    let mut reader = BufReader::new(conn);
    for i in 0..schedule.len() {
        let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("read").expect("reply");
        match decode_msg(&payload).expect("decodable") {
            Msg::Verdict { id, .. } => assert_eq!(id, i as u64, "reply out of request order"),
            other => panic!("expected a Verdict for request {i}, got {other:?}"),
        }
    }
}

#[test]
fn sessions_spread_across_shards_and_seal_correctly() {
    let server = Server::start(&["--event-loop", "--shards", "3"]);
    let conn = server.connect();
    // more sessions than shards: round-robin opens must hand out distinct
    // public handles that route back to their owning shard on every push
    let streams: Vec<AppendStream> = (0..6).map(|s| append_stream(48, 3, 4, 1000 + s)).collect();
    let mut handles = Vec::new();
    for (s, st) in streams.iter().enumerate() {
        match rpc(&conn, &Msg::OpenSession { id: s as u64, n_atoms: st.n_atoms as u64 }) {
            Msg::SessionVerdict { id, session, .. } => {
                assert_eq!(id, s as u64);
                handles.push(session);
            }
            other => panic!("open {s}: {other:?}"),
        }
    }
    let distinct: std::collections::HashSet<u64> = handles.iter().copied().collect();
    assert_eq!(distinct.len(), handles.len(), "public session handles must be collision-free");

    // interleave pushes round-robin across all sessions
    let max_pushes = streams.iter().map(|s| s.pushes.len()).max().unwrap();
    for p in 0..max_pushes {
        for (s, st) in streams.iter().enumerate() {
            if p >= st.pushes.len() {
                continue;
            }
            let msg = Msg::PushAtoms {
                id: (100 + p * 10 + s) as u64,
                session: handles[s],
                delta: st.push_ensemble(p),
            };
            match rpc(&conn, &msg) {
                Msg::SessionVerdict { verdict: WireVerdict::Accept { .. }, .. } => {}
                other => panic!("push {p} of stream {s}: {other:?}"),
            }
        }
    }
    // seal each and check the order against an in-process one-shot solve
    for (s, st) in streams.iter().enumerate() {
        let reply = rpc(&conn, &Msg::SealSession { id: (900 + s) as u64, session: handles[s] });
        let order = match reply {
            Msg::SessionVerdict { verdict: WireVerdict::Accept { order }, .. } => order,
            other => panic!("seal {s}: {other:?}"),
        };
        let expected = c1p_core::solve(&st.final_ensemble()).expect("append streams are C1P");
        assert_eq!(order, expected, "stream {s}: sealed order differs from one-shot solve");
    }
}

#[test]
fn metrics_dump_carries_durability_counters() {
    let wal = std::env::temp_dir().join(format!(
        "c1pd-elserve-wal-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&wal);
    std::fs::create_dir_all(&wal).expect("wal dir");
    let wal_s: PathBuf = wal.clone();
    let server = Server::start(&[
        "--event-loop",
        "--shards",
        "2",
        "--wal-dir",
        wal_s.to_str().expect("utf-8 temp dir"),
    ]);
    let conn = server.connect();
    // one durable session push per shard: WAL appends and fsyncs happen
    let st = append_stream(32, 2, 3, 9);
    for s in 0..2u64 {
        let session = match rpc(&conn, &Msg::OpenSession { id: s, n_atoms: st.n_atoms as u64 }) {
            Msg::SessionVerdict { session, .. } => session,
            other => panic!("open: {other:?}"),
        };
        match rpc(&conn, &Msg::PushAtoms { id: 10 + s, session, delta: st.push_ensemble(0) }) {
            Msg::SessionVerdict { .. } => {}
            other => panic!("push: {other:?}"),
        }
    }
    let dump = match rpc(&conn, &Msg::GetMetrics) {
        Msg::Metrics { text } => text,
        other => panic!("expected a Metrics frame, got {other:?}"),
    };
    // the PR 6 durability counters must be visible — and live — in the
    // text dump, summed across shards
    for series in ["c1pd_wal_appends_total", "c1pd_wal_fsyncs_total", "c1pd_session_pushes_total"] {
        let v = c1p_net::metrics::scrape(&dump, series)
            .unwrap_or_else(|| panic!("{series} missing from the dump"));
        assert!(v > 0, "{series} should be nonzero after durable pushes, got {v}");
    }
    for series in ["c1pd_quarantined_wals_total", "c1pd_recovered_sessions_total"] {
        assert_eq!(
            c1p_net::metrics::scrape(&dump, series),
            Some(0),
            "{series} must render (as zero) on a healthy first boot"
        );
    }
    // per-shard series carry the shard label for every shard
    assert!(dump.contains("c1pd_shard_jobs_total{shard=\"0\"}"));
    assert!(dump.contains("c1pd_shard_jobs_total{shard=\"1\"}"));
    drop(server);
    let _ = std::fs::remove_dir_all(&wal);
}

#[test]
fn get_stats_sums_engine_counters_across_shards() {
    let server = Server::start(&["--event-loop", "--shards", "3"]);
    let conn = server.connect();
    let schedule = mixed_schedule(MixedSchedule {
        requests: 24,
        seed: 3,
        dup_every: 2,
        reject_every: 5,
        n_lo: 16,
        n_hi: 48,
    });
    for (i, ens) in schedule.iter().enumerate() {
        match rpc(&conn, &Msg::Solve { id: i as u64, ens: ens.clone() }) {
            Msg::Verdict { .. } => {}
            other => panic!("solve {i}: {other:?}"),
        }
    }
    let json = match rpc(&conn, &Msg::GetStats) {
        Msg::Stats { json } => json,
        other => panic!("expected Stats, got {other:?}"),
    };
    // 24 solves hit *some* shard each; the summed requests counter must
    // see all of them even though no single shard did
    let requests = json
        .split("\"requests\":")
        .nth(1)
        .and_then(|s| s.trim_start().split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse::<u64>().ok())
        .expect("requests counter in stats json");
    assert_eq!(requests, 24, "summed stats must count every request across shards");
}

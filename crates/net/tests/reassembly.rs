//! Cross-wakeup frame reassembly over a real socket: a seeded fuzz
//! feeds every frame type 1–3 bytes per write, so the length prefix and
//! every payload straddle many reads, and the verdicts must come back
//! byte-identical to whole-frame delivery. Runs against both server
//! modes — the event loop reassembles in [`c1p_net::conn::FrameReader`],
//! the legacy mode inside blocking `read_frame_until` calls — plus the
//! nastiest truncation: EOF in the middle of a length prefix.

use c1p_engine::proto::{decode_msg, encode_msg, read_frame, write_frame, Msg, DEFAULT_MAX_FRAME};
use c1p_matrix::generate::{append_stream, planted, planted_reject};
use c1p_matrix::Ensemble;
use rand::{RngExt, SeedableRng, StdRng};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

static SEQ: AtomicU32 = AtomicU32::new(0);

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start(extra_args: &[&str]) -> Server {
        let port_file = std::env::temp_dir().join(format!(
            "c1pd-reasm-{}-{}.port",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_c1pd"))
            .args(["--addr", "127.0.0.1:0", "--port-file"])
            .arg(&port_file)
            // dribbled writes must never trip the stall reaper: the
            // budget measures peer silence, and this peer is merely slow
            .args(["--threads", "1", "--read-timeout-ms", "10000"])
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn c1pd");
        let t0 = Instant::now();
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "c1pd never wrote its port");
            std::thread::sleep(Duration::from_millis(20));
        };
        let _ = std::fs::remove_file(&port_file);
        Server { child, addr: format!("127.0.0.1:{port}") }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(&self.addr).expect("connect to c1pd");
        s.set_nodelay(true).ok();
        s
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A deterministic request mix covering every client→server frame type:
/// solves (accept + reject + duplicate), a full session lifecycle, a
/// stats and a metrics probe, and one undecodable payload.
fn request_mix(session: u64) -> Vec<Vec<u8>> {
    let st = append_stream(24, 2, 2, 5);
    let msgs = vec![
        Msg::Solve { id: 0, ens: planted(20, 1) },
        Msg::Solve { id: 1, ens: planted_reject(24, 2).0 },
        Msg::OpenSession { id: 2, n_atoms: st.n_atoms as u64 },
        Msg::Solve { id: 3, ens: planted(20, 1) }, // duplicate: cache hit path
        Msg::GetStats,
        Msg::PushAtoms { id: 4, session, delta: st.push_ensemble(0) },
        Msg::GetMetrics,
        Msg::PushAtoms { id: 5, session, delta: st.push_ensemble(1) },
        Msg::Solve { id: 6, ens: planted(28, 3) },
        Msg::SealSession { id: 7, session },
    ];
    let mut frames: Vec<Vec<u8>> = msgs
        .iter()
        .map(|m| {
            let mut f = Vec::new();
            write_frame(&mut f, &encode_msg(m)).expect("vec write");
            f
        })
        .collect();
    // an undecodable payload (bad tag): Malformed, connection survives
    let mut bad = Vec::new();
    write_frame(&mut bad, &[0x7f, 9, 9, 9]).expect("vec write");
    frames.push(bad);
    frames
}

/// Sends every frame and collects the decoded replies, with `chunked`
/// controlling delivery: whole frames per write, or 1–3 bytes per write
/// with periodic pauses so the server demonstrably wakes up mid-frame.
fn run(server: &Server, session: u64, chunked: Option<&mut StdRng>) -> Vec<Msg> {
    let frames = request_mix(session);
    let conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut writer = conn;
    let mut replies = Vec::new();
    match chunked {
        None => {
            for f in &frames {
                writer.write_all(f).expect("write frame");
            }
        }
        Some(rng) => {
            let all: Vec<u8> = frames.concat();
            let mut at = 0;
            let mut writes = 0u32;
            while at < all.len() {
                let take = rng.random_range(1usize..=3).min(all.len() - at);
                writer.write_all(&all[at..at + take]).expect("dribble");
                at += take;
                writes += 1;
                // occasional pauses force the bytes onto the wire in
                // separate segments (nodelay) and the server through
                // genuinely partial reads
                if writes.is_multiple_of(40) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
    for _ in 0..frames.len() {
        let payload =
            read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("read").expect("one reply per frame");
        replies.push(decode_msg(&payload).expect("decodable reply"));
    }
    replies
}

/// Replies to the deterministic mix must match between chunked and whole
/// delivery: byte-identical for everything except the live stats/metrics
/// snapshots, which must still agree in kind.
fn assert_equivalent(whole: &[Msg], dribbled: &[Msg]) {
    assert_eq!(whole.len(), dribbled.len());
    for (i, (a, b)) in whole.iter().zip(dribbled).enumerate() {
        match (a, b) {
            (Msg::Stats { .. }, Msg::Stats { .. }) => {}
            (Msg::Metrics { .. }, Msg::Metrics { .. }) => {}
            _ => assert_eq!(
                encode_msg(a),
                encode_msg(b),
                "reply {i} differs between whole-frame and dribbled delivery: {a:?} vs {b:?}"
            ),
        }
    }
}

/// `session` is the handle the server's first `OpenSession` hands out —
/// 1 in legacy mode (engine-local ids start at 1), `1·shards + 0` under
/// the event loop's public-id interleaving. A fresh server per run keeps
/// the handle, the cache state and every reply deterministic.
fn dribble_fuzz(mode: &[&str], session: u64) {
    let whole = run(&Server::start(mode), session, None);
    // sanity: the mix exercised real verdicts (the open/push/seal
    // replies are SessionVerdicts), not just errors
    assert!(whole.iter().any(|m| matches!(m, Msg::Verdict { .. })));
    assert!(whole
        .iter()
        .any(|m| matches!(m, Msg::SessionVerdict { verdict: c1p_matrix::io::WireVerdict::Accept { order }, .. } if !order.is_empty())));
    assert!(whole.iter().any(|m| matches!(m, Msg::Error { .. })));
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(0xD21B_B1E0 ^ seed);
        let dribbled = run(&Server::start(mode), session, Some(&mut rng));
        assert_equivalent(&whole, &dribbled);
    }
}

#[test]
fn dribbled_frames_reassemble_identically_legacy() {
    dribble_fuzz(&[], 1);
}

#[test]
fn dribbled_frames_reassemble_identically_event_loop() {
    dribble_fuzz(&["--event-loop", "--shards", "2"], 2);
}

fn truncated_prefix(mode: &[&str]) {
    let server = Server::start(mode);
    // a connection that dies two bytes into its length prefix must not
    // wedge the server or leak a reply; the next connection works fine
    {
        let mut conn = server.connect();
        conn.write_all(&[0x10, 0x00]).expect("partial prefix");
        // EOF mid-prefix (drop) — server side sees a truncated frame
    }
    // and one that dies mid-payload
    {
        let mut conn = server.connect();
        let mut f = Vec::new();
        write_frame(&mut f, &encode_msg(&Msg::GetStats)).expect("vec write");
        conn.write_all(&f[..f.len() - 1]).expect("partial body");
    }
    let conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut writer = conn;
    let mut f = Vec::new();
    write_frame(&mut f, &encode_msg(&Msg::GetStats)).expect("vec write");
    writer.write_all(&f).expect("write");
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("read").expect("reply");
    assert!(
        matches!(decode_msg(&payload), Ok(Msg::Stats { .. })),
        "server must stay healthy after truncated peers"
    );
    // solve still works end to end too
    let ens = Ensemble::from_columns(6, vec![vec![0, 1], vec![1, 2]]).unwrap();
    let mut f = Vec::new();
    write_frame(&mut f, &encode_msg(&Msg::Solve { id: 9, ens })).expect("vec write");
    writer.write_all(&f).expect("write");
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("read").expect("reply");
    assert!(matches!(decode_msg(&payload), Ok(Msg::Verdict { id: 9, .. })));
}

#[test]
fn truncated_length_prefix_never_wedges_legacy() {
    truncated_prefix(&[]);
}

#[test]
fn truncated_length_prefix_never_wedges_event_loop() {
    truncated_prefix(&["--event-loop", "--shards", "2"]);
}

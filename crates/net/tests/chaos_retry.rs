//! Retry-idempotency under chaos, end to end: a fault-plan-configured
//! `c1pd` drops shard replies and kills workers while the self-healing
//! client streams session pushes at it. The properties under test
//! (DESIGN.md §12):
//!
//! * **no double-apply** — every ambiguous ack resolves through the
//!   recovered-stream-hash handshake; a push applied twice would fold
//!   the hash twice and the handshake would report divergence, so the
//!   suite finishing without `StateDiverged` *is* the proof;
//! * **bit-identical seals** — a sealed order that *arrives* equals the
//!   fault-free ground truth (`c1p_core::solve` of the final
//!   concatenation) byte for byte, across seeds and shard counts; a
//!   seal whose reply was lost recovers an order that must still verify
//!   as a witness for exactly the accepted stream;
//! * **supervised restarts recover sessions** — an injected worker
//!   kill restarts the shard in-process, WAL recovery restores the
//!   session, and the stream finishes as if nothing happened.

#![cfg(unix)]

use c1p_engine::proto::{
    decode_msg, encode_msg, read_frame, write_frame, Msg, WalHealth, DEFAULT_MAX_FRAME,
};
use c1p_matrix::generate::append_stream;
use c1p_matrix::io::WireVerdict;
use c1p_net::client::{Client, PushOutcome, RetryPolicy, SealOutcome};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

static SEQ: AtomicU32 = AtomicU32::new(0);

/// A live `c1pd` child on an ephemeral port; killed on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start(extra_args: &[&str]) -> Server {
        let port_file = std::env::temp_dir().join(format!(
            "c1pd-chaos-{}-{}.port",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_c1pd"))
            .args(["--addr", "127.0.0.1:0", "--port-file"])
            .arg(&port_file)
            .args(["--threads", "1", "--event-loop"])
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn c1pd");
        let t0 = Instant::now();
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "c1pd never wrote its port");
            std::thread::sleep(Duration::from_millis(20));
        };
        let _ = std::fs::remove_file(&port_file);
        Server { child, addr: format!("127.0.0.1:{port}") }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One raw (non-retrying) request/response — for metrics scrapes, which
/// the event thread answers inline and chaos never touches.
fn rpc(addr: &str, msg: &Msg) -> Msg {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    write_frame(&mut writer, &encode_msg(msg)).expect("write frame");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let payload =
        read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("read frame").expect("server answers");
    decode_msg(&payload).expect("decodable response")
}

/// A generous client budget: chaos stalls individual exchanges, but CI
/// must never flake on a slow runner.
fn policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_secs(60),
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
        seed,
    }
}

/// Streams `stream` through one session with the retry client and seals,
/// asserting the core idempotency properties along the way. Returns the
/// sealed order and the transport retries the client performed.
fn drive_stream(addr: &str, seed: u64) -> (Vec<u32>, u64) {
    let stream = append_stream(40, 3, 5, seed);
    let expected = c1p_core::solve(&stream.final_ensemble()).expect("append streams are C1P");
    let mut client = Client::new(addr, policy(seed));
    let mut session = client.open_session(stream.n_atoms).expect("open session");
    for k in 0..stream.pushes.len() {
        match session.push(&stream.push_ensemble(k)).expect("push settles") {
            PushOutcome::Verdict(WireVerdict::Accept { .. }) | PushOutcome::RecoveredAccepted => {}
            PushOutcome::Verdict(other) => panic!("push {k} rejected an append stream: {other:?}"),
        }
    }
    match session.seal().expect("seal settles") {
        // a seal whose reply arrived must be bit-identical to fault-free
        SealOutcome::Order(order) => {
            assert_eq!(order, expected, "sealed order differs from the fault-free ground truth");
            (order, client.retries())
        }
        // the seal applied but its reply was lost: the order is still
        // recoverable — sealing inserted the concatenation in the cache.
        // The cache may hand back the witness in the opposite (equally
        // valid) orientation, so this path verifies rather than compares.
        SealOutcome::LostButSealed => {
            let order = match client.solve(&stream.final_ensemble()).expect("solve after seal") {
                WireVerdict::Accept { order } => order,
                other => panic!("post-seal solve rejected: {other:?}"),
            };
            c1p_matrix::verify::verify_linear(&stream.final_ensemble(), &order)
                .expect("recovered order must be a valid witness for the accepted stream");
            (order, client.retries())
        }
    }
}

#[test]
fn dropped_replies_never_double_apply_across_seeds_and_shard_counts() {
    for (seed, shards) in [(11u64, "1"), (29u64, "3")] {
        // every 3rd shard reply is dropped; the 250 ms server deadline
        // turns each loss into an exact Unavailable instead of a hang,
        // and the client's hash handshake disambiguates applied vs not
        let server = Server::start(&[
            "--shards",
            shards,
            "--chaos-seed",
            "7",
            "--chaos-drop-every",
            "3",
            "--request-deadline-ms",
            "250",
        ]);
        let (_, retries) = drive_stream(&server.addr, seed);
        assert!(
            retries > 0,
            "seed {seed}, {shards} shard(s): dropping a third of replies must force retries"
        );
        // the server counts handshake rounds too: QuerySession frames
        let dump = match rpc(&server.addr, &Msg::GetMetrics) {
            Msg::Metrics { text } => text,
            other => panic!("expected Metrics, got {other:?}"),
        };
        let served = c1p_net::metrics::scrape(&dump, "c1pd_retries_total").expect("stable name");
        assert!(served > 0, "the server must have served the handshake queries");
        let injected =
            c1p_net::metrics::scrape(&dump, "c1pd_faults_injected_total").expect("stable name");
        assert!(injected > 0, "the drop schedule must actually have fired");
    }
}

#[test]
fn injected_worker_kills_are_supervised_and_sessions_recover_from_the_wal() {
    let wal = std::env::temp_dir().join(format!(
        "c1pd-chaos-wal-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&wal);
    std::fs::create_dir_all(&wal).expect("wal dir");
    // every 4th job batch panics its worker; supervision respawns it and
    // the respawned engine recovers the session from <wal>/shard-i, all
    // within this one process lifetime
    let server = Server::start(&[
        "--shards",
        "2",
        "--wal-dir",
        wal.to_str().expect("utf-8 temp dir"),
        "--chaos-seed",
        "3",
        "--chaos-kill-every",
        "4",
        "--request-deadline-ms",
        "2000",
    ]);
    for seed in [5u64, 17] {
        let (_, retries) = drive_stream(&server.addr, seed);
        // not asserted per-stream: a lucky schedule may dodge the kills
        let _ = retries;
    }
    let dump = match rpc(&server.addr, &Msg::GetMetrics) {
        Msg::Metrics { text } => text,
        other => panic!("expected Metrics, got {other:?}"),
    };
    let restarts =
        c1p_net::metrics::scrape(&dump, "c1pd_shard_restarts_total").expect("stable name");
    assert!(restarts >= 1, "kill-every-4 over two streams must restart at least one worker");
    let swept =
        c1p_net::metrics::scrape(&dump, "c1pd_degraded_replies_total").expect("stable name");
    assert!(swept >= 1, "a killed batch's requests must be answered Unavailable, not dropped");
    drop(server);
    let _ = std::fs::remove_dir_all(&wal);
}

#[test]
fn ping_reports_shard_liveness_and_wal_health() {
    let server = Server::start(&["--shards", "3"]);
    let mut client = Client::new(&server.addr, policy(1));
    match client.ping().expect("ping") {
        Msg::Pong { wal, shards, .. } => {
            assert_eq!(wal, WalHealth::Disabled, "no --wal-dir: durability is off, not broken");
            assert_eq!(shards.len(), 3);
            for (i, s) in shards.iter().enumerate() {
                assert!(s.live && !s.degraded, "shard {i} should be live on a fresh server");
            }
        }
        other => panic!("expected Pong, got {other:?}"),
    }
}

//! Admission control over real TCP: every refusal path of `c1pd` must
//! answer with an *exact* error frame — right id echo, right
//! [`ErrorCode`] — rather than silently dropping the connection. Covers
//! the queue-depth, instance-size, connection-count and frame-size
//! limits, plus the session error codes. Every test runs twice — legacy
//! thread-per-connection mode and `--event-loop --shards 2` — because
//! the two servers promise byte-identical refusal behaviour.

use c1p_engine::proto::{
    decode_msg, encode_msg, read_frame, write_frame, ErrorCode, Msg, DEFAULT_MAX_FRAME,
};
use c1p_matrix::io::fig2_matrix;
use c1p_matrix::Ensemble;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// A live `c1pd` child on an ephemeral port; killed on drop.
struct Server {
    child: Child,
    addr: String,
}

static PORT_FILE_SEQ: AtomicU32 = AtomicU32::new(0);

/// The `--event-loop` variant's extra flags (2 shards so the sharded
/// paths participate in every refusal).
const EVENT_LOOP: &[&str] = &["--event-loop", "--shards", "2"];

impl Server {
    fn start(mode: &[&str], extra_args: &[&str]) -> Server {
        let port_file = std::env::temp_dir().join(format!(
            "c1pd-admission-{}-{}.port",
            std::process::id(),
            PORT_FILE_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_c1pd"))
            .args(["--addr", "127.0.0.1:0", "--port-file"])
            .arg(&port_file)
            .args(["--threads", "1"])
            .args(mode)
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn c1pd");
        let t0 = Instant::now();
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "c1pd never wrote its port");
            std::thread::sleep(Duration::from_millis(20));
        };
        let _ = std::fs::remove_file(&port_file);
        Server { child, addr: format!("127.0.0.1:{port}") }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("connect to c1pd")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One request/response round trip over an existing connection.
fn rpc(stream: &TcpStream, msg: &Msg) -> Msg {
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    write_frame(&mut writer, &encode_msg(msg)).expect("write frame");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("read frame")
        .expect("server must answer, not drop");
    decode_msg(&payload).expect("decodable response")
}

fn expect_error(got: Msg, id: u64, code: ErrorCode) {
    match got {
        Msg::Error { id: got_id, code: got_code, message } => {
            assert_eq!((got_id, got_code), (id, code), "error frame mismatch: {message}");
            assert!(!message.is_empty(), "error frames carry a human-readable detail");
        }
        other => panic!("expected an Error frame ({code:?}), got {other:?}"),
    }
}

fn queue_depth_and_instance_size(mode: &[&str]) {
    let server = Server::start(mode, &["--max-queue", "0", "--max-atoms", "4"]);
    let conn = server.connect();
    // over the atom limit: TooLarge wins (checked at submit admission)
    expect_error(rpc(&conn, &Msg::Solve { id: 7, ens: fig2_matrix() }), 7, ErrorCode::TooLarge);
    // within the atom limit but a zero-capacity queue: Overloaded
    let tiny = Ensemble::from_columns(3, vec![vec![0, 1]]).unwrap();
    expect_error(rpc(&conn, &Msg::Solve { id: 8, ens: tiny }), 8, ErrorCode::Overloaded);
    // the connection survives both refusals
    assert!(matches!(rpc(&conn, &Msg::GetStats), Msg::Stats { .. }));
}

fn connection_limit(mode: &[&str]) {
    let server = Server::start(mode, &["--max-conns", "1"]);
    let held = server.connect();
    // make sure the first connection is fully registered server-side
    assert!(matches!(rpc(&held, &Msg::GetStats), Msg::Stats { .. }));
    let refused = server.connect();
    let mut reader = BufReader::new(refused.try_clone().expect("clone"));
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("refused connection still gets a frame")
        .expect("one Overloaded frame");
    expect_error(decode_msg(&payload).unwrap(), 0, ErrorCode::Overloaded);
    assert_eq!(read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("clean close"), None);
    // releasing the held connection frees the slot (poll: the server
    // decrements its counter after the handler thread unwinds)
    drop(held);
    let t0 = Instant::now();
    loop {
        let again = server.connect();
        let mut reader = BufReader::new(again.try_clone().expect("clone"));
        let mut writer = BufWriter::new(again.try_clone().expect("clone"));
        write_frame(&mut writer, &encode_msg(&Msg::GetStats)).expect("write");
        writer.flush().expect("flush");
        let reply = read_frame(&mut reader, DEFAULT_MAX_FRAME)
            .expect("read")
            .map(|p| decode_msg(&p).expect("decodable"));
        match reply {
            Some(Msg::Stats { .. }) => break,
            _ => {
                assert!(t0.elapsed() < Duration::from_secs(30), "slot never freed");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn oversized_frames(mode: &[&str]) {
    let server = Server::start(mode, &["--max-frame-mb", "1"]);
    let conn = server.connect();
    // a hostile 2 MiB length prefix with no payload behind it: the server
    // must refuse on the declared length alone, with an exact error frame
    let mut writer = BufWriter::new(conn.try_clone().expect("clone"));
    writer.write_all(&(2u32 << 20).to_le_bytes()).expect("write length");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("server answers before closing")
        .expect("one TooLarge frame");
    expect_error(decode_msg(&payload).unwrap(), 0, ErrorCode::TooLarge);
    // then the connection closes (the stream position is unrecoverable)
    assert_eq!(read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("clean close"), None);
}

fn malformed_and_session_errors(mode: &[&str]) {
    let server = Server::start(mode, &["--max-atoms", "64"]);
    let conn = server.connect();
    // undecodable payload: Malformed, connection survives
    let mut writer = BufWriter::new(conn.try_clone().expect("clone"));
    write_frame(&mut writer, &[0x7f, 1, 2, 3]).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("read").expect("frame");
    expect_error(decode_msg(&payload).unwrap(), 0, ErrorCode::Malformed);
    // session ops against a handle that does not exist: NoSession
    expect_error(
        rpc(&conn, &Msg::PushAtoms { id: 3, session: 99, delta: Ensemble::new(4) }),
        3,
        ErrorCode::NoSession,
    );
    expect_error(rpc(&conn, &Msg::SealSession { id: 4, session: 99 }), 4, ErrorCode::NoSession);
    // opening over the atom limit: TooLarge
    expect_error(rpc(&conn, &Msg::OpenSession { id: 5, n_atoms: 65 }), 5, ErrorCode::TooLarge);
    // a push whose atom count disagrees with its session: Malformed
    let session = match rpc(&conn, &Msg::OpenSession { id: 6, n_atoms: 8 }) {
        Msg::SessionVerdict { id: 6, session, .. } => session,
        other => panic!("expected a SessionVerdict, got {other:?}"),
    };
    expect_error(
        rpc(&conn, &Msg::PushAtoms { id: 7, session, delta: Ensemble::new(9) }),
        7,
        ErrorCode::Malformed,
    );
    // ...and the session survives the refused push
    assert!(matches!(
        rpc(&conn, &Msg::SealSession { id: 8, session }),
        Msg::SessionVerdict { id: 8, .. }
    ));
}

#[test]
fn queue_depth_and_instance_size_answer_exact_error_frames() {
    queue_depth_and_instance_size(&[]);
}

#[test]
fn queue_depth_and_instance_size_answer_exact_error_frames_event_loop() {
    queue_depth_and_instance_size(EVENT_LOOP);
}

#[test]
fn connection_limit_refuses_with_one_overloaded_frame_then_eof() {
    connection_limit(&[]);
}

#[test]
fn connection_limit_refuses_with_one_overloaded_frame_then_eof_event_loop() {
    connection_limit(EVENT_LOOP);
}

#[test]
fn oversized_frames_answer_too_large_then_close() {
    oversized_frames(&[]);
}

#[test]
fn oversized_frames_answer_too_large_then_close_event_loop() {
    oversized_frames(EVENT_LOOP);
}

#[test]
fn malformed_payloads_and_session_errors_name_their_codes() {
    malformed_and_session_errors(&[]);
}

#[test]
fn malformed_payloads_and_session_errors_name_their_codes_event_loop() {
    malformed_and_session_errors(EVENT_LOOP);
}

//! Trace semantics over real TCP: a live `c1pd` with sampling on must
//! hand back, via `GetTraces`, a complete span tree for a solve —
//! decode → admission → queue → mailbox → cache → solve (with every
//! solver phase laid end-to-end inside it) → flush — with monotone,
//! non-overlapping children that sum to no more than the root. And the
//! *structure* of that trace (trace id, kind, span names, parents,
//! order) must be byte-identical between the legacy and event-loop
//! servers for the same seeded request, even though physical timings
//! differ (the cross-mode contract in DESIGN.md §13).

use c1p_engine::proto::{decode_msg, encode_msg, read_frame, write_frame, Msg, DEFAULT_MAX_FRAME};
use c1p_matrix::io::fig2_matrix;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// A live `c1pd` child on an ephemeral port; killed on drop.
struct Server {
    child: Child,
    addr: String,
}

static PORT_FILE_SEQ: AtomicU32 = AtomicU32::new(0);

const EVENT_LOOP: &[&str] = &["--event-loop", "--shards", "2"];

/// Sampling on for every frame, fixed seed so trace ids are
/// reproducible across both server modes.
const TRACING: &[&str] = &["--trace-sample", "1", "--trace-seed", "7"];

impl Server {
    fn start(mode: &[&str], extra_args: &[&str]) -> Server {
        let port_file = std::env::temp_dir().join(format!(
            "c1pd-trace-{}-{}.port",
            std::process::id(),
            PORT_FILE_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_c1pd"))
            .args(["--addr", "127.0.0.1:0", "--port-file"])
            .arg(&port_file)
            .args(["--threads", "1"])
            .args(mode)
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn c1pd");
        let t0 = Instant::now();
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "c1pd never wrote its port");
            std::thread::sleep(Duration::from_millis(20));
        };
        let _ = std::fs::remove_file(&port_file);
        Server { child, addr: format!("127.0.0.1:{port}") }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("connect to c1pd")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One request/response round trip over an existing connection.
fn rpc(stream: &TcpStream, msg: &Msg) -> Msg {
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    write_frame(&mut writer, &encode_msg(msg)).expect("write frame");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("read frame")
        .expect("server must answer, not drop");
    decode_msg(&payload).expect("decodable response")
}

/// A span parsed back out of a rendered JSONL trace line.
#[derive(Debug, Clone)]
struct Span {
    name: String,
    parent: String,
    start_us: u64,
    end_us: u64,
}

/// Minimal field extraction from the fixed JSONL the tracer renders —
/// the format is ours end to end, so no general JSON parser is needed.
fn field(key: &str, from: &str) -> Option<String> {
    let at = from.find(&format!("\"{key}\":"))?;
    let rest = &from[at + key.len() + 3..];
    let rest = rest.strip_prefix('"').unwrap_or(rest);
    let end = rest.find(['"', ',', '}'])?;
    Some(rest[..end].to_string())
}

fn spans_of(line: &str) -> Vec<Span> {
    line.split("{\"name\":\"")
        .skip(1)
        .map(|chunk| {
            let name = chunk[..chunk.find('"').expect("span name")].to_string();
            Span {
                name,
                parent: field("parent", chunk).expect("span parent"),
                start_us: field("start_us", chunk).expect("span start").parse().expect("u64"),
                end_us: field("end_us", chunk).expect("span end").parse().expect("u64"),
            }
        })
        .collect()
}

/// Runs one seeded solve against a fresh server and returns the rendered
/// JSONL line of its trace.
fn solve_trace_line(mode: &[&str]) -> String {
    let server = Server::start(mode, TRACING);
    let conn = server.connect();
    let reply = rpc(&conn, &Msg::Solve { id: 11, ens: fig2_matrix() });
    assert!(matches!(reply, Msg::Verdict { id: 11, .. }), "solve must succeed, got {reply:?}");
    let jsonl = match rpc(&conn, &Msg::GetTraces) {
        Msg::Traces { jsonl } => jsonl,
        other => panic!("expected Traces, got {other:?}"),
    };
    jsonl
        .lines()
        .find(|l| l.contains("\"kind\":\"solve\""))
        .expect("the sampled solve must be retained")
        .to_string()
}

/// The complete lifecycle for a solve: every span the pipeline promises,
/// with a valid tree shape — monotone spans inside their parents, the
/// solver phases non-overlapping and summing to at most the solve
/// span, everything bounded by the root.
fn solve_span_tree_is_complete_and_wellformed(mode: &[&str]) {
    let line = solve_trace_line(mode);
    let total_us: u64 = field("total_us", &line).expect("total_us").parse().expect("u64");
    let spans = spans_of(&line);
    let get = |name: &str| -> &Span {
        spans.iter().find(|s| s.name == name).unwrap_or_else(|| panic!("missing span {name}"))
    };

    // every promised lifecycle stage is present, root first
    assert_eq!(spans[0].name, "request", "root span leads the line");
    assert_eq!(spans[0].parent, "null");
    for name in ["decode", "admission", "queue", "mailbox", "cache", "solve", "flush"] {
        assert_eq!(get(name).parent, "request", "{name} parents to the root");
    }
    let phases: Vec<&Span> = spans.iter().filter(|s| s.name.starts_with("solve/")).collect();
    assert_eq!(
        phases.len(),
        c1p_core::stats::PHASE_NAMES.len(),
        "every solver phase reported: {line}"
    );
    for p in &phases {
        assert_eq!(p.parent, "solve", "{} parents to the solve span", p.name);
    }

    // tree shape: monotone spans, children inside parents, root == total
    let root = get("request");
    assert_eq!((root.start_us, root.end_us), (0, total_us));
    for s in &spans {
        assert!(s.start_us <= s.end_us, "span {} runs backwards: {line}", s.name);
        assert!(s.end_us <= total_us, "span {} escapes the root: {line}", s.name);
    }
    let solve = get("solve").clone();
    let mut cursor = solve.start_us;
    let mut phase_sum = 0;
    for p in &phases {
        assert!(p.start_us >= cursor, "phase {} overlaps its predecessor: {line}", p.name);
        assert!(p.end_us <= solve.end_us, "phase {} escapes the solve span: {line}", p.name);
        cursor = p.end_us;
        phase_sum += p.end_us - p.start_us;
    }
    assert!(phase_sum <= solve.end_us - solve.start_us, "phases sum past their parent: {line}");

    // the lifecycle is physically sequential: each stage starts no
    // earlier than the one before it
    let mut last = 0;
    for name in ["decode", "admission", "queue", "mailbox", "cache", "solve", "flush"] {
        let s = get(name);
        assert!(s.start_us >= last, "{name} starts before its predecessor: {line}");
        last = s.start_us;
    }
}

#[test]
fn solve_span_tree_legacy() {
    solve_span_tree_is_complete_and_wellformed(&[]);
}

#[test]
fn solve_span_tree_event_loop() {
    solve_span_tree_is_complete_and_wellformed(EVENT_LOOP);
}

/// The cross-mode contract: the same seeded request produces the same
/// trace id (ids are content-derived) and the same structural projection
/// — span names, parents, order — in both server modes, byte for byte.
#[test]
fn trace_structure_is_stable_across_modes() {
    let legacy = solve_trace_line(&[]);
    let event_loop = solve_trace_line(EVENT_LOOP);
    let a = c1p_net::trace::structure(&legacy).expect("legacy line projects");
    let b = c1p_net::trace::structure(&event_loop).expect("event-loop line projects");
    assert_eq!(a, b, "legacy:\n{legacy}\nevent-loop:\n{event_loop}");
}

/// Exemplars rendered into the metrics text must point at trace ids the
/// server actually retained — over TCP, not just in the unit harness.
#[test]
fn metrics_exemplars_reference_retained_traces() {
    let server = Server::start(EVENT_LOOP, TRACING);
    let conn = server.connect();
    assert!(matches!(
        rpc(&conn, &Msg::Solve { id: 3, ens: fig2_matrix() }),
        Msg::Verdict { id: 3, .. }
    ));
    let text = match rpc(&conn, &Msg::GetMetrics) {
        Msg::Metrics { text } => text,
        other => panic!("expected Metrics, got {other:?}"),
    };
    let jsonl = match rpc(&conn, &Msg::GetTraces) {
        Msg::Traces { jsonl } => jsonl,
        other => panic!("expected Traces, got {other:?}"),
    };
    let retained: Vec<String> = jsonl.lines().filter_map(|l| field("trace_id", l)).collect();
    assert!(!retained.is_empty(), "sampling at 1-in-1 must retain traces");
    let mut exemplars = 0;
    for line in text.lines() {
        if let Some(at) = line.find("trace_id=\"") {
            let rest = &line[at + 10..];
            let tid = &rest[..rest.find('"').expect("closing quote")];
            assert!(retained.iter().any(|r| r == tid), "exemplar {tid} points at a dropped trace");
            exemplars += 1;
        }
    }
    assert!(exemplars > 0, "latency histogram must carry exemplars after a solve");
}

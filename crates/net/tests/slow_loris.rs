//! The `--read-timeout-ms` stall budget, in both server modes: a peer
//! that stalls *mid-frame* past the budget gets one exact `Timeout`
//! error frame, then the close — while a peer that is merely idle
//! *between* frames is never reaped, no matter how long it sits.

use c1p_engine::proto::{
    decode_msg, encode_msg, read_frame, write_frame, ErrorCode, Msg, DEFAULT_MAX_FRAME,
};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

static SEQ: AtomicU32 = AtomicU32::new(0);

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start(extra_args: &[&str]) -> Server {
        let port_file = std::env::temp_dir().join(format!(
            "c1pd-loris-{}-{}.port",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_c1pd"))
            .args(["--addr", "127.0.0.1:0", "--port-file"])
            .arg(&port_file)
            .args(["--threads", "1"])
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn c1pd");
        let t0 = Instant::now();
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "c1pd never wrote its port");
            std::thread::sleep(Duration::from_millis(20));
        };
        let _ = std::fs::remove_file(&port_file);
        Server { child, addr: format!("127.0.0.1:{port}") }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(&self.addr).expect("connect to c1pd");
        s.set_nodelay(true).ok();
        s
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

const BUDGET_MS: u64 = 150;

/// A stalled partial frame must be answered with the exact `Timeout`
/// error frame — code, id and message — and then the connection closes.
fn stalled_mid_frame_gets_exact_timeout(mode: &[&str], partial: &[u8]) {
    let server = Server::start(&[mode, &["--read-timeout-ms", "150"]].concat());
    let mut conn = server.connect();
    conn.write_all(partial).expect("partial frame");
    conn.flush().expect("flush");
    // no further bytes: the reaper must fire after the budget
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let t0 = Instant::now();
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("server answers before closing")
        .expect("one Timeout frame, not a silent drop");
    assert!(
        t0.elapsed() >= Duration::from_millis(BUDGET_MS / 2),
        "reaped too early — idle time must be allowed up to the budget"
    );
    match decode_msg(&payload).expect("decodable") {
        Msg::Error { id, code, message } => {
            assert_eq!(id, 0);
            assert_eq!(code, ErrorCode::Timeout);
            assert_eq!(
                message,
                format!("stalled mid-frame past the {BUDGET_MS} ms read-timeout budget"),
                "both modes promise this exact message"
            );
        }
        other => panic!("expected the Timeout error frame, got {other:?}"),
    }
    // then EOF: the stream position is unrecoverable
    assert_eq!(
        read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("clean close"),
        None,
        "connection must close after the Timeout frame"
    );
}

#[test]
fn stalled_length_prefix_times_out_legacy() {
    stalled_mid_frame_gets_exact_timeout(&[], &[0x08, 0x00]);
}

#[test]
fn stalled_length_prefix_times_out_event_loop() {
    stalled_mid_frame_gets_exact_timeout(&["--event-loop", "--shards", "2"], &[0x08, 0x00]);
}

#[test]
fn stalled_payload_times_out_legacy() {
    // a complete prefix declaring 8 bytes, then only one of them
    stalled_mid_frame_gets_exact_timeout(&[], &[0x08, 0x00, 0x00, 0x00, 0x04]);
}

#[test]
fn stalled_payload_times_out_event_loop() {
    stalled_mid_frame_gets_exact_timeout(
        &["--event-loop", "--shards", "2"],
        &[0x08, 0x00, 0x00, 0x00, 0x04],
    );
}

/// Idle *between* frames is not a stall: a connection that sits silent
/// for several budgets must still be served afterwards.
fn idle_between_frames_is_never_reaped(mode: &[&str]) {
    let server = Server::start(&[mode, &["--read-timeout-ms", "150"]].concat());
    let conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut writer = conn;
    std::thread::sleep(Duration::from_millis(4 * BUDGET_MS));
    let mut f = Vec::new();
    write_frame(&mut f, &encode_msg(&Msg::GetStats)).expect("vec write");
    writer.write_all(&f).expect("write after long idle");
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("read")
        .expect("idle connections stay connected");
    assert!(matches!(decode_msg(&payload), Ok(Msg::Stats { .. })));
}

#[test]
fn idle_between_frames_survives_legacy() {
    idle_between_frames_is_never_reaped(&[]);
}

#[test]
fn idle_between_frames_survives_event_loop() {
    idle_between_frames_is_never_reaped(&["--event-loop", "--shards", "2"]);
}

/// `--read-timeout-ms 0` disables the reaper entirely: a partial frame
/// may stall indefinitely (bounded here by a few budgets) and then
/// complete normally.
fn zero_budget_disables_the_reaper(mode: &[&str]) {
    let server = Server::start(&[mode, &["--read-timeout-ms", "0"]].concat());
    let mut conn = server.connect();
    let mut f = Vec::new();
    write_frame(&mut f, &encode_msg(&Msg::GetStats)).expect("vec write");
    conn.write_all(&f[..2]).expect("partial prefix");
    conn.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(3 * BUDGET_MS));
    conn.write_all(&f[2..]).expect("rest of the frame");
    let mut reader = BufReader::new(conn);
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .expect("read")
        .expect("disabled reaper must let the frame complete");
    assert!(matches!(decode_msg(&payload), Ok(Msg::Stats { .. })));
}

#[test]
fn zero_budget_disables_reaper_legacy() {
    zero_budget_disables_the_reaper(&[]);
}

#[test]
fn zero_budget_disables_reaper_event_loop() {
    zero_budget_disables_the_reaper(&["--event-loop", "--shards", "2"]);
}

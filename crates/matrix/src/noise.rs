//! The error model of the paper's Section 1.1.
//!
//! "Experimental data is likely to contain numerous errors, including false
//! positives, false negatives, and other abnormalities, such as chimerisms."
//! These injectors corrupt a (typically planted-C1P) instance so experiments
//! can measure how reliably the solvers *reject* corrupted maps (E6).

use crate::ensemble::{Atom, Ensemble};
use rand::{Rng, RngExt};

/// Adds `count` false positives: entries flipped 0→1 (an STS spuriously
/// reported in a clone). Duplicate picks are retried a bounded number of
/// times, so the result may contain slightly fewer flips on dense inputs.
pub fn false_positives(ens: &Ensemble, count: usize, rng: &mut impl Rng) -> Ensemble {
    let n = ens.n_atoms();
    let mut cols: Vec<Vec<Atom>> = ens.columns().to_vec();
    if n == 0 || cols.is_empty() {
        return ens.clone();
    }
    let mut done = 0;
    let mut attempts = 0;
    while done < count && attempts < 20 * count + 100 {
        attempts += 1;
        let ci = rng.random_range(0..cols.len());
        let a = rng.random_range(0..n) as Atom;
        if cols[ci].binary_search(&a).is_err() {
            let idx = cols[ci].partition_point(|&x| x < a);
            cols[ci].insert(idx, a);
            done += 1;
        }
    }
    Ensemble::from_sorted_columns(n, cols).expect("flips preserve validity")
}

/// Adds `count` false negatives: entries flipped 1→0 (an STS missed in a
/// clone's fingerprint).
pub fn false_negatives(ens: &Ensemble, count: usize, rng: &mut impl Rng) -> Ensemble {
    let mut cols: Vec<Vec<Atom>> = ens.columns().to_vec();
    let mut done = 0;
    let mut attempts = 0;
    while done < count && attempts < 20 * count + 100 {
        attempts += 1;
        let ci = rng.random_range(0..cols.len().max(1));
        if cols.is_empty() || cols[ci].is_empty() {
            continue;
        }
        let k = rng.random_range(0..cols[ci].len());
        cols[ci].remove(k);
        done += 1;
    }
    Ensemble::from_sorted_columns(ens.n_atoms(), cols).expect("removals preserve validity")
}

/// Replaces `count` pairs of columns by their unions — *chimeric clones*:
/// two DNA fragments spuriously joined during cloning, fingerprinting as one
/// clone covering two separate regions.
pub fn chimerize(ens: &Ensemble, count: usize, rng: &mut impl Rng) -> Ensemble {
    let mut cols: Vec<Vec<Atom>> = ens.columns().to_vec();
    for _ in 0..count {
        if cols.len() < 2 {
            break;
        }
        let i = rng.random_range(0..cols.len());
        let mut j = rng.random_range(0..cols.len() - 1);
        if j >= i {
            j += 1;
        }
        let (a, b) = (cols[i].clone(), cols[j].clone());
        let mut merged: Vec<Atom> = a;
        merged.extend_from_slice(&b);
        merged.sort_unstable();
        merged.dedup();
        let hi = i.max(j);
        let lo = i.min(j);
        cols[lo] = merged;
        cols.swap_remove(hi);
    }
    Ensemble::from_sorted_columns(ens.n_atoms(), cols).expect("merges preserve validity")
}

/// Flips `count` uniformly random entries (either direction) — the generic
/// perturbation used by property tests.
pub fn flip_random(ens: &Ensemble, count: usize, rng: &mut impl Rng) -> Ensemble {
    let mut m = ens.to_matrix();
    if m.n_rows() == 0 || m.n_cols() == 0 {
        return ens.clone();
    }
    for _ in 0..count {
        let r = rng.random_range(0..m.n_rows());
        let c = rng.random_range(0..m.n_cols());
        m.flip(r, c);
    }
    m.to_ensemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{planted_c1p, PlantedShape};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn planted(seed: u64) -> Ensemble {
        let mut rng = SmallRng::seed_from_u64(seed);
        planted_c1p(PlantedShape { n_atoms: 40, n_columns: 60, min_len: 2, max_len: 8 }, &mut rng).0
    }

    #[test]
    fn false_positives_increase_p() {
        let ens = planted(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let noisy = false_positives(&ens, 10, &mut rng);
        assert_eq!(noisy.p(), ens.p() + 10);
    }

    #[test]
    fn false_negatives_decrease_p() {
        let ens = planted(3);
        let mut rng = SmallRng::seed_from_u64(4);
        let noisy = false_negatives(&ens, 10, &mut rng);
        assert_eq!(noisy.p(), ens.p() - 10);
    }

    #[test]
    fn chimerize_reduces_column_count() {
        let ens = planted(5);
        let mut rng = SmallRng::seed_from_u64(6);
        let noisy = chimerize(&ens, 7, &mut rng);
        assert_eq!(noisy.n_columns(), ens.n_columns() - 7);
    }

    #[test]
    fn flip_random_changes_entries() {
        let ens = planted(7);
        let mut rng = SmallRng::seed_from_u64(8);
        let noisy = flip_random(&ens, 1, &mut rng);
        assert_ne!(noisy, ens);
    }

    #[test]
    fn noise_on_empty_is_noop() {
        let ens = Ensemble::new(0);
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(false_positives(&ens, 5, &mut rng).n_atoms(), 0);
        assert_eq!(flip_random(&ens, 5, &mut rng).n_atoms(), 0);
    }
}

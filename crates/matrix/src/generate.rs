//! Workload generators.
//!
//! The paper reports no datasets, only instance *shapes* (Section 1.1 cites
//! 18 000–25 000 clones and 9 000–15 000 STSs). These generators synthesize
//! instances of controllable shape:
//!
//! * [`planted_c1p`] — guaranteed-C1P instances with a hidden atom order
//!   (the positive workload for every experiment);
//! * [`random_ensemble`] — unconstrained random instances (almost surely not
//!   C1P once dense enough — the negative workload);
//! * [`interval_graph_cliques`] — vertex × maximal-clique incidence of a
//!   random interval graph, which is C1P by the clique-ordering theorem the
//!   paper invokes in Section 1.4 (interval-graph recognition reduces to
//!   C1P \[6\]);
//! * [`planted`] / [`planted_k`] / [`planted_reject`] — the seeded standard
//!   workloads shared by the experiment harness (`c1p-bench`) and the
//!   serving load driver (`c1p-engine`), so every traffic generator in the
//!   workspace draws from a single definition.

use crate::ensemble::{Atom, Ensemble};
use crate::tucker::TuckerFamily;
use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

/// Fisher–Yates shuffle (local helper so we do not depend on `rand::seq`
/// API details).
pub fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

/// A random permutation of `0..n`.
pub fn random_permutation(n: usize, rng: &mut impl Rng) -> Vec<Atom> {
    let mut p: Vec<Atom> = (0..n as Atom).collect();
    shuffle(&mut p, rng);
    p
}

/// Shape parameters for [`planted_c1p`].
#[derive(Debug, Clone, Copy)]
pub struct PlantedShape {
    /// Number of atoms `n`.
    pub n_atoms: usize,
    /// Number of columns `m`.
    pub n_columns: usize,
    /// Minimum column length (≥ 1).
    pub min_len: usize,
    /// Maximum column length (≤ n).
    pub max_len: usize,
}

/// Generates a C1P instance by planting intervals in a hidden random atom
/// order and then revealing the columns under scrambled atom names.
///
/// Returns `(ensemble, hidden_order)`; `hidden_order` is a witness
/// realization (the solver should find *some* realization, not necessarily
/// this one).
pub fn planted_c1p(shape: PlantedShape, rng: &mut impl Rng) -> (Ensemble, Vec<Atom>) {
    let PlantedShape { n_atoms, n_columns, min_len, max_len } = shape;
    assert!(n_atoms > 0, "need at least one atom");
    let min_len = min_len.clamp(1, n_atoms);
    let max_len = max_len.clamp(min_len, n_atoms);
    // hidden[i] = atom at position i of the hidden layout.
    let hidden = random_permutation(n_atoms, rng);
    let mut cols = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        let len = rng.random_range(min_len..=max_len);
        let start = rng.random_range(0..=n_atoms - len);
        let mut col: Vec<Atom> = hidden[start..start + len].to_vec();
        col.sort_unstable();
        cols.push(col);
    }
    let ens = Ensemble::from_sorted_columns(n_atoms, cols).expect("planted columns are valid");
    (ens, hidden)
}

/// Generates an unconstrained random ensemble: each entry is 1 with
/// probability `density`. With `density·n ≳ 3` such matrices are almost
/// surely not C1P, giving the rejection workload.
pub fn random_ensemble(
    n_atoms: usize,
    n_columns: usize,
    density: f64,
    rng: &mut impl Rng,
) -> Ensemble {
    let mut cols = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        let mut col = Vec::new();
        for a in 0..n_atoms as Atom {
            if rng.random_range(0.0..1.0) < density {
                col.push(a);
            }
        }
        cols.push(col);
    }
    Ensemble::from_sorted_columns(n_atoms, cols).expect("random columns are valid")
}

/// A random ensemble where every column has exactly `k` atoms (uniform
/// without replacement). Useful for density-controlled sweeps (experiment
/// E7's density factor `f = nm/p = n/k`).
pub fn random_k_uniform(
    n_atoms: usize,
    n_columns: usize,
    k: usize,
    rng: &mut impl Rng,
) -> Ensemble {
    assert!(k <= n_atoms);
    let mut pool: Vec<Atom> = (0..n_atoms as Atom).collect();
    let mut cols = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        // partial Fisher-Yates: first k entries are a uniform k-subset
        for i in 0..k {
            let j = rng.random_range(i..n_atoms);
            pool.swap(i, j);
        }
        let mut col: Vec<Atom> = pool[..k].to_vec();
        col.sort_unstable();
        cols.push(col);
    }
    Ensemble::from_sorted_columns(n_atoms, cols).expect("k-subsets are valid")
}

/// The standard planted instance used by the scaling experiments and the
/// serving load driver: `m = 2n` interval columns of mean length ≈ 12 (the
/// clone-coverage shape of Section 1.1), deterministic in `(n, seed)`.
///
/// Shared by `c1p-bench`'s workloads and `c1p-engine`'s `load_driver` so
/// every traffic generator in the workspace draws from one definition.
pub fn planted(n: usize, seed: u64) -> Ensemble {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC190u64);
    planted_c1p(
        PlantedShape { n_atoms: n, n_columns: 2 * n, min_len: 2, max_len: 24.min(n.max(3) - 1) },
        &mut rng,
    )
    .0
}

/// A planted instance with every column of length exactly `k` (density
/// factor `f = n/k`), for experiment E7.
pub fn planted_k(n: usize, m: usize, k: usize, seed: u64) -> Ensemble {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    planted_c1p(PlantedShape { n_atoms: n, n_columns: m, min_len: k, max_len: k }, &mut rng).0
}

/// The standard *rejection* workload: [`planted`]'s shape with one Tucker
/// obstruction (family cycled by `seed`) embedded at a seed-deterministic
/// offset — non-C1P at every size, with the obstruction buried in `2n`
/// satisfiable columns. Returns the ensemble and the planted family.
pub fn planted_reject(n: usize, seed: u64) -> (Ensemble, TuckerFamily) {
    let base = planted(n, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBAD5EED);
    let k = 1 + rng.random_range(0..4usize);
    let fam = match seed % 5 {
        0 => TuckerFamily::MI(k),
        1 => TuckerFamily::MII(k),
        2 => TuckerFamily::MIII(k),
        3 => TuckerFamily::MIV,
        _ => TuckerFamily::MV,
    };
    let obs = fam.generate();
    assert!(n >= obs.n_atoms(), "rejection workload needs n >= family size");
    let offset = rng.random_range(0..=n - obs.n_atoms());
    let mut cols = base.columns().to_vec();
    cols.extend(
        obs.columns().iter().map(|c| c.iter().map(|&a| a + offset as Atom).collect::<Vec<_>>()),
    );
    (Ensemble::from_columns(n, cols).expect("embedded columns are valid"), fam)
}

/// A deterministic append-only session workload: `pushes` batches of
/// columns over a fixed atom set, every prefix of which is C1P (each
/// batch *extends* the ensemble — the traffic shape incremental sessions
/// serve). Produced by [`append_stream`] / [`append_stream_reject`];
/// shared by the `c1p-incremental` differential tests, experiment E12 and
/// `load_driver --mode sessions`, so every stream consumer in the
/// workspace draws from one definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendStream {
    /// Atom count fixed at session open.
    pub n_atoms: usize,
    /// The pushes, in arrival order; each is a batch of columns.
    pub pushes: Vec<Vec<Vec<Atom>>>,
}

impl AppendStream {
    /// Total columns across all pushes.
    pub fn n_columns(&self) -> usize {
        self.pushes.iter().map(Vec::len).sum()
    }

    /// The concatenated ensemble after the first `k` pushes (what a
    /// one-shot solve of the prefix sees).
    pub fn prefix_ensemble(&self, k: usize) -> Ensemble {
        let cols: Vec<Vec<Atom>> =
            self.pushes[..k].iter().flat_map(|p| p.iter().cloned()).collect();
        Ensemble::from_columns(self.n_atoms, cols).expect("stream columns are valid")
    }

    /// The full concatenated ensemble.
    pub fn final_ensemble(&self) -> Ensemble {
        self.prefix_ensemble(self.pushes.len())
    }

    /// Push `k` as a standalone delta ensemble (the `PushAtoms` payload).
    pub fn push_ensemble(&self, k: usize) -> Ensemble {
        Ensemble::from_columns(self.n_atoms, self.pushes[k].clone())
            .expect("stream columns are valid")
    }
}

/// The standard accept-only append stream: the atom set is partitioned
/// into `blocks` contiguous independent blocks, each carrying `2·size`
/// planted interval columns under a hidden per-block order; columns
/// arrive block by block (shuffled within a block) in `pushes` batches.
///
/// Every prefix is C1P (planted intervals stay realizable under any
/// subset), components never span blocks, and the stream's *suffix* is
/// block-local — the locality that makes differential re-solve win (a
/// late push touches the last block or two, not the whole ensemble).
/// Deterministic in `(n, blocks, pushes, seed)`.
pub fn append_stream(n: usize, blocks: usize, pushes: usize, seed: u64) -> AppendStream {
    assert!(n > 0 && pushes > 0, "need atoms and at least one push");
    let blocks = blocks.clamp(1, n);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA99E_5D12);
    let mut cols: Vec<Vec<Atom>> = Vec::new();
    let (base, rem) = (n / blocks, n % blocks);
    let mut start = 0usize;
    for b in 0..blocks {
        let size = base + usize::from(b < rem);
        if size == 0 {
            continue;
        }
        let (block, _) = planted_c1p(
            PlantedShape {
                n_atoms: size,
                n_columns: 2 * size,
                min_len: 2.min(size),
                max_len: 12.min(size),
            },
            &mut rng,
        );
        let mut block_cols: Vec<Vec<Atom>> = block
            .columns()
            .iter()
            .map(|c| c.iter().map(|&a| a + start as Atom).collect())
            .collect();
        shuffle(&mut block_cols, &mut rng);
        cols.extend(block_cols);
        start += size;
    }
    // chunk into `pushes` nearly-even batches, early batches one longer
    let total = cols.len();
    let (per, extra) = (total / pushes, total % pushes);
    let mut it = cols.into_iter();
    let pushes: Vec<Vec<Vec<Atom>>> = (0..pushes)
        .map(|i| {
            let take = per + usize::from(i < extra);
            it.by_ref().take(take).collect()
        })
        .collect();
    AppendStream { n_atoms: n, pushes }
}

/// [`append_stream`] with one Tucker obstruction (family cycled by
/// `seed`) confined to a seed-chosen block and spliced into a seed-chosen
/// push: every prefix before that push is C1P, the obstructed push is
/// not, and the stream after a rollback of that push is C1P again.
/// Returns `(stream, reject_push_index, planted_family)`.
pub fn append_stream_reject(
    n: usize,
    blocks: usize,
    pushes: usize,
    seed: u64,
) -> (AppendStream, usize, TuckerFamily) {
    let mut stream = append_stream(n, blocks, pushes, seed);
    let blocks = blocks.clamp(1, n);
    assert!(n / blocks >= 16, "reject embedding needs blocks of >= 16 atoms");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBAD5_7BEA);
    let k = 1 + rng.random_range(0..3usize);
    let fam = match seed % 5 {
        0 => TuckerFamily::MI(k),
        1 => TuckerFamily::MII(k),
        2 => TuckerFamily::MIII(k),
        3 => TuckerFamily::MIV,
        _ => TuckerFamily::MV,
    };
    let obs = fam.generate();
    // land the obstruction inside one block so the rejection is
    // component-local (the interesting case for differential re-solve)
    let (base, rem) = (n / blocks, n % blocks);
    let block = rng.random_range(0..blocks);
    let start: usize = (0..block).map(|b| base + usize::from(b < rem)).sum();
    let size = base + usize::from(block < rem);
    let offset = start + rng.random_range(0..=size - obs.n_atoms());
    let push_ix = rng.random_range(0..stream.pushes.len());
    stream.pushes[push_ix].extend(
        obs.columns().iter().map(|c| c.iter().map(|&a| a + offset as Atom).collect::<Vec<_>>()),
    );
    (stream, push_ix, fam)
}

/// Parameters for [`mixed_schedule`], the standard served-traffic shape
/// shared by `c1p-engine`'s `load_driver`, experiment E11 and the
/// `engine_batch` example (one definition, three consumers — so the CI
/// gate and the bench always measure the same workload).
#[derive(Debug, Clone, Copy)]
pub struct MixedSchedule {
    /// Total requests in the schedule.
    pub requests: usize,
    /// Master seed; the schedule is deterministic in it.
    pub seed: u64,
    /// Every `dup_every`-th request replays an earlier fresh instance
    /// (`0` disables duplicates).
    pub dup_every: usize,
    /// Every `reject_every`-th request is a [`planted_reject`]
    /// (`0` disables rejects).
    pub reject_every: usize,
    /// Smallest instance size (≥ 16: the reject embedding needs room).
    pub n_lo: usize,
    /// Largest instance size (inclusive).
    pub n_hi: usize,
}

/// The standard mixed serving workload: fresh planted accepts, fresh
/// planted rejects, and seed-deterministic replays of earlier instances
/// (the traffic a result cache is supposed to absorb).
pub fn mixed_schedule(p: MixedSchedule) -> Vec<Ensemble> {
    let MixedSchedule { requests, seed, dup_every, reject_every, n_lo, n_hi } = p;
    assert!(n_lo >= 16 && n_hi >= n_lo, "reject embedding needs n >= 16");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x10AD_D81E);
    let mut schedule: Vec<Ensemble> = Vec::with_capacity(requests);
    let mut distinct: Vec<usize> = Vec::new(); // indices of fresh instances
    for i in 0..requests {
        if dup_every > 0 && i % dup_every == dup_every - 1 && !distinct.is_empty() {
            let j = distinct[rng.random_range(0..distinct.len())];
            schedule.push(schedule[j].clone());
            continue;
        }
        let n = rng.random_range(n_lo..=n_hi);
        let inst_seed = seed.wrapping_mul(1009).wrapping_add(i as u64);
        let ens = if reject_every > 0 && i % reject_every == reject_every - 1 {
            planted_reject(n, inst_seed).0
        } else {
            planted(n, inst_seed)
        };
        distinct.push(i);
        schedule.push(ens);
    }
    schedule
}

/// A random interval graph on `n_vertices` and its maximal-clique incidence
/// ensemble: atoms are the maximal cliques (in left-endpoint order), one
/// column per vertex listing the cliques containing it.
///
/// For interval graphs this ensemble always has C1P with the clique order as
/// witness (Gilmore–Hoffman); recognition of interval graphs reduces to C1P
/// of this matrix, the reduction cited by the paper in Section 1.4.
///
/// Returns `(ensemble, intervals)` where `intervals[v] = (lo, hi)` endpoints.
pub fn interval_graph_cliques(
    n_vertices: usize,
    span: usize,
    rng: &mut impl Rng,
) -> (Ensemble, Vec<(u32, u32)>) {
    assert!(n_vertices > 0);
    let line = (4 * n_vertices).max(8) as u32;
    let mut intervals: Vec<(u32, u32)> = (0..n_vertices)
        .map(|_| {
            let lo = rng.random_range(0..line);
            let len = rng.random_range(1..=span.max(1)) as u32;
            (lo, (lo + len).min(line))
        })
        .collect();
    // Maximal cliques of an interval graph = cliques at "clique points":
    // sweep endpoints; a maximal clique forms just before some interval's
    // right endpoint where no new interval opened since the last clique.
    // Simpler O(n^2) construction (fine for generation): candidate cliques
    // at each left endpoint; keep the inclusion-maximal distinct ones.
    intervals.sort_unstable();
    // Candidate cliques at each left endpoint, in sweep order. A vertex's
    // cliques are exactly those whose clique point lies inside its interval,
    // so they are consecutive in sweep order — and remain so after dropping
    // non-maximal candidates.
    let mut points: Vec<u32> = intervals.iter().map(|&(lo, _)| lo).collect();
    points.sort_unstable();
    points.dedup();
    let cliques: Vec<Vec<u32>> = points
        .iter()
        .map(|&lo| {
            intervals
                .iter()
                .enumerate()
                .filter(|&(_, &(l, h))| l <= lo && lo < h)
                .map(|(v, _)| v as u32)
                .collect::<Vec<u32>>()
        })
        .filter(|c| !c.is_empty())
        .collect();
    let mut keep: Vec<Vec<u32>> = cliques
        .iter()
        .filter(|c| {
            !cliques
                .iter()
                .any(|d| d.len() > c.len() && c.iter().all(|v| d.binary_search(v).is_ok()))
        })
        .cloned()
        .collect();
    keep.dedup();
    let n_cliques = keep.len();
    let mut cols = vec![Vec::new(); n_vertices];
    for (qi, clique) in keep.iter().enumerate() {
        for &v in clique {
            cols[v as usize].push(qi as Atom);
        }
    }
    let ens = Ensemble::from_sorted_columns(n_cliques, cols).expect("clique matrix is valid");
    (ens, intervals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_linear;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn planted_is_realized_by_hidden_order() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 40, 200] {
            let (ens, hidden) = planted_c1p(
                PlantedShape { n_atoms: n, n_columns: 3 * n, min_len: 1, max_len: (n / 3).max(2) },
                &mut rng,
            );
            verify_linear(&ens, &hidden).expect("hidden order must realize the planted instance");
        }
    }

    #[test]
    fn planted_shape_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (ens, _) = planted_c1p(
            PlantedShape { n_atoms: 50, n_columns: 20, min_len: 3, max_len: 7 },
            &mut rng,
        );
        assert_eq!(ens.n_columns(), 20);
        assert!(ens.columns().iter().all(|c| (3..=7).contains(&c.len())));
    }

    #[test]
    fn k_uniform_columns_have_size_k() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ens = random_k_uniform(30, 10, 4, &mut rng);
        assert!(ens.columns().iter().all(|c| c.len() == 4));
        assert_eq!(ens.density_factor(), Some(30.0 / 4.0));
    }

    #[test]
    fn interval_clique_matrix_is_c1p_with_clique_order() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            let (ens, _) = interval_graph_cliques(12, 6, &mut rng);
            let order: Vec<Atom> = (0..ens.n_atoms() as Atom).collect();
            verify_linear(&ens, &order)
                .expect("clique matrix in left-endpoint order must be consecutive");
        }
    }

    #[test]
    fn planted_workloads_are_deterministic_and_shaped() {
        let a = planted(200, 1);
        assert_eq!(a, planted(200, 1));
        assert_eq!(a.n_columns(), 400);
        let e = planted_k(100, 50, 5, 3);
        assert!(e.columns().iter().all(|c| c.len() == 5));
        assert_eq!(e.density_factor(), Some(100.0 / 5.0));
        let (r, fam) = planted_reject(128, 2);
        let (r2, fam2) = planted_reject(128, 2);
        assert_eq!(r, r2);
        assert_eq!(fam, fam2);
        // the planted obstruction is really in there: its restriction to the
        // embedded window classifies back to the family (checked end-to-end
        // by the solver-differential tests in c1p-bench)
        assert!(r.n_columns() > 256, "base columns plus the obstruction's");
    }

    #[test]
    fn mixed_schedule_is_deterministic_with_replays() {
        let p = MixedSchedule {
            requests: 30,
            seed: 5,
            dup_every: 3,
            reject_every: 4,
            n_lo: 32,
            n_hi: 48,
        };
        let a = mixed_schedule(p);
        assert_eq!(a, mixed_schedule(p));
        assert_eq!(a.len(), 30);
        // replays really duplicate earlier entries
        let replayed = a.iter().enumerate().filter(|(i, e)| a[..*i].contains(e)).count();
        assert!(replayed >= 5, "expected replays in the schedule, saw {replayed}");
    }

    #[test]
    fn append_streams_are_deterministic_and_block_local() {
        let s = append_stream(64, 4, 10, 7);
        assert_eq!(s, append_stream(64, 4, 10, 7));
        assert_eq!(s.pushes.len(), 10);
        assert_eq!(s.n_columns(), 2 * 64, "2·size columns per block");
        assert_eq!(s.final_ensemble().n_columns(), s.n_columns());
        // no column crosses a block boundary (blocks of 16 atoms)
        for push in &s.pushes {
            for col in push {
                assert!(!col.is_empty());
                let block = col[0] / 16;
                assert!(col.iter().all(|&a| a / 16 == block), "column {col:?} crosses blocks");
            }
        }
        // nearly-even chunking: sizes differ by at most one
        let sizes: Vec<usize> = s.pushes.iter().map(Vec::len).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(hi - lo <= 1, "{sizes:?}");
    }

    #[test]
    fn append_stream_reject_plants_one_obstruction() {
        let (s, at, fam) = append_stream_reject(64, 4, 8, 3);
        let (s2, at2, fam2) = append_stream_reject(64, 4, 8, 3);
        assert_eq!((&s, at, fam), (&s2, at2, fam2), "deterministic");
        assert!(at < s.pushes.len());
        // the obstructed stream has exactly the base stream plus the
        // obstruction's columns, spliced into push `at`
        let base = append_stream(64, 4, 8, 3);
        assert_eq!(s.n_columns(), base.n_columns() + fam.generate().n_columns());
        for (i, (p, b)) in s.pushes.iter().zip(&base.pushes).enumerate() {
            if i == at {
                assert_eq!(&p[..b.len()], &b[..], "good columns keep their order");
            } else {
                assert_eq!(p, b, "only push {at} gains columns");
            }
        }
    }

    #[test]
    fn random_permutation_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let p = random_permutation(100, &mut rng);
        let mut q = p.clone();
        q.sort_unstable();
        assert_eq!(q, (0..100).collect::<Vec<_>>());
    }
}

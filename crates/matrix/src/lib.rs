//! # c1p-matrix: ensembles, (0,1)-matrices and consecutive-ones workloads
//!
//! This crate provides the *input model* of Annexstein & Swaminathan,
//! "On testing consecutive-ones property in parallel" (SPAA'95 / DAM 88,
//! 1998): the **ensemble** `(A, C)` of Section 2 — a set of atoms `A` and a
//! collection of columns, each a subset of `A`. A linear layout of the atoms
//! *realizes* the ensemble when every column occupies a contiguous run; the
//! ensemble then has the **consecutive-ones property (C1P)**. The circular
//! variant (every column an arc of a cyclic layout) is the
//! **circular-ones property**.
//!
//! Provided here:
//!
//! * [`Ensemble`] / [`Matrix01`] — the two equivalent input representations;
//! * [`verify`] — linear and circular certificates (`O(p)` checkers);
//! * [`transform`] — Tucker's complement transform used by Case 2 of the
//!   paper's divide step (Section 3.2): C1P ⇔ circular-ones of the transform;
//! * [`generate`] — planted-C1P instances, random ensembles, interval-graph
//!   clique matrices;
//! * [`biology`] — the physical-mapping workload of the paper's Section 1.1
//!   (clone libraries fingerprinted by STS probes), plus the
//!   consecutive-retrieval workload of Section 1.4;
//! * [`noise`] — the error model of Section 1.1 (false positives, false
//!   negatives, chimeric clones);
//! * [`tucker`] — Tucker's minimal non-C1P obstruction families.

pub mod biology;
pub mod ensemble;
pub mod generate;
pub mod io;
pub mod noise;
pub mod transform;
pub mod tucker;
pub mod verify;

pub use ensemble::{Atom, Ensemble, EnsembleError, Matrix01};
pub use verify::{verify_circular, verify_linear, Violation};

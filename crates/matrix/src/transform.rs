//! Tucker's complement transform (paper Section 3.2, Case 2; Tucker \[19\]).
//!
//! When no column has "proper size" (between `|A|/3` and `2|A|/3`), the
//! paper transforms the instance: add a fresh atom `r`, and replace every
//! large column `C` (`|C| > 2|A'|/3`) by its complement `A' − C`. The
//! transformed ensemble has the *circular*-ones property iff the original
//! has the consecutive-ones property, and all transformed columns are small
//! (`≤ |A'|/3`), which guarantees a balanced segment partition exists.

use crate::ensemble::{Atom, Ensemble};

/// Result of [`circular_transform`].
#[derive(Debug, Clone)]
pub struct Transformed {
    /// The transformed ensemble `(A', 𝒞')` with `n_atoms + 1` atoms.
    pub ensemble: Ensemble,
    /// The fresh atom `r` (always `n_atoms` of the original).
    pub r: Atom,
    /// For each transformed column: the original column id and whether it
    /// was complemented.
    pub provenance: Vec<(u32, bool)>,
}

/// Applies the paper's `Transform((A, 𝒞))`.
///
/// Columns with `|C| ≤ threshold` are kept; larger ones are complemented
/// with respect to `A' = A ∪ {r}`. The paper uses `threshold = |A'|/3` after
/// establishing no proper-size column exists; this function takes the
/// threshold explicitly so it can also be exercised on general inputs.
/// Transformed columns of fewer than 2 atoms are dropped (they constrain
/// nothing), recorded in `provenance` only if kept.
pub fn circular_transform(ens: &Ensemble, threshold: usize) -> Transformed {
    let n = ens.n_atoms();
    let r = n as Atom;
    let mut columns = Vec::with_capacity(ens.n_columns());
    let mut provenance = Vec::with_capacity(ens.n_columns());
    let mut present = vec![false; n];
    for (ci, col) in ens.columns().iter().enumerate() {
        if col.len() <= threshold {
            if col.len() >= 2 {
                columns.push(col.clone());
                provenance.push((ci as u32, false));
            }
            continue;
        }
        // Complement with respect to A ∪ {r}: contains r by construction.
        for &a in col {
            present[a as usize] = true;
        }
        let mut comp: Vec<Atom> = (0..n as Atom).filter(|&a| !present[a as usize]).collect();
        comp.push(r);
        for &a in col {
            present[a as usize] = false;
        }
        if comp.len() >= 2 {
            columns.push(comp);
            provenance.push((ci as u32, true));
        }
    }
    let ensemble =
        Ensemble::from_sorted_columns(n + 1, columns).expect("transform preserves validity");
    Transformed { ensemble, r, provenance }
}

/// Converts a circular realization of the transformed ensemble back into a
/// linear realization of the original: rotate so `r` is last, then drop it.
/// (Cutting the cycle at `r`'s position keeps every original column an
/// interval — see DESIGN.md §3.2 discussion and the paper's Step 7 Case 2.)
pub fn untransform_order(circular: &[Atom], r: Atom) -> Vec<Atom> {
    let pos = circular.iter().position(|&a| a == r).expect("r must appear in the circular order");
    let n = circular.len();
    let mut out = Vec::with_capacity(n - 1);
    for i in 1..n {
        out.push(circular[(pos + i) % n]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{brute_force_circular, brute_force_linear, verify_linear};

    fn ens(n: usize, cols: Vec<Vec<Atom>>) -> Ensemble {
        Ensemble::from_columns(n, cols).unwrap()
    }

    #[test]
    fn transform_complements_large_columns() {
        let e = ens(6, vec![vec![0, 1, 2, 3, 4], vec![0, 1]]);
        let t = circular_transform(&e, 2);
        assert_eq!(t.ensemble.n_atoms(), 7);
        // {0,1,2,3,4} -> complement {5, r=6}; {0,1} kept.
        assert_eq!(t.ensemble.columns(), &[vec![5, 6], vec![0, 1]]);
        assert_eq!(t.provenance, vec![(0, true), (1, false)]);
    }

    #[test]
    fn transform_drops_trivial() {
        // complement of a 5-column over 5 atoms is {r} alone: dropped.
        let e = ens(5, vec![vec![0, 1, 2, 3, 4]]);
        let t = circular_transform(&e, 2);
        assert_eq!(t.ensemble.n_columns(), 0);
    }

    #[test]
    fn untransform_rotates_and_drops_r() {
        assert_eq!(untransform_order(&[2, 9, 0, 1], 9), vec![0, 1, 2]);
        assert_eq!(untransform_order(&[9, 0, 1, 2], 9), vec![0, 1, 2]);
    }

    /// Exhaustive check of the transform theorem (Tucker \[19\]) on all small
    /// matrices: C1P(original) ⇔ circular-ones(transform).
    #[test]
    fn transform_theorem_small_exhaustive() {
        for n in 1..5usize {
            for m in 1..3usize {
                // enumerate all m-column ensembles over n atoms (columns as bitmasks)
                let masks = 1usize << n;
                for code in 0..masks.pow(m as u32) {
                    let mut cc = code;
                    let mut cols = Vec::new();
                    for _ in 0..m {
                        let mask = cc % masks;
                        cc /= masks;
                        cols.push(
                            (0..n as Atom).filter(|&a| mask >> a & 1 == 1).collect::<Vec<_>>(),
                        );
                    }
                    let e = ens(n, cols);
                    let t = circular_transform(&e, (e.n_atoms() + 1) / 3);
                    let lin = brute_force_linear(&e).is_some();
                    let circ = brute_force_circular(&t.ensemble).is_some();
                    assert_eq!(lin, circ, "transform theorem violated for {:?}", e.to_matrix());
                }
            }
        }
    }

    #[test]
    fn round_trip_via_circular_solution() {
        let e = ens(6, vec![vec![0, 1, 2, 3, 4], vec![1, 2], vec![4, 5]]);
        let t = circular_transform(&e, 2);
        let circ = brute_force_circular(&t.ensemble).expect("transform is circular-ones");
        let lin = untransform_order(&circ, t.r);
        assert!(verify_linear(&e, &lin).is_ok(), "{:?} from {:?}", lin, circ);
    }
}

//! Certificate checkers: does a given layout realize an ensemble?
//!
//! These are the `O(p)` verifiers used as ground truth throughout the
//! workspace — every solver's positive answer is validated against them, so
//! solver soundness never rests on solver internals.

use crate::ensemble::{Atom, Ensemble};

/// Why a layout fails to realize an ensemble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `order` is not a permutation of `0..n_atoms`.
    NotAPermutation,
    /// Column `column` is not contiguous: it occupies `span` positions but
    /// only has `len` atoms.
    Gap { column: usize, span: usize, len: usize },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotAPermutation => write!(f, "layout is not a permutation of the atoms"),
            Violation::Gap { column, span, len } => {
                write!(f, "column {column} spans {span} positions but has {len} atoms")
            }
        }
    }
}

/// Returns the position of each atom: `pos[a]` = index of atom `a` in
/// `order`, or `None` if `order` is not a permutation of `0..n_atoms`.
pub fn positions(n_atoms: usize, order: &[Atom]) -> Option<Vec<u32>> {
    if order.len() != n_atoms {
        return None;
    }
    let mut pos = vec![u32::MAX; n_atoms];
    for (i, &a) in order.iter().enumerate() {
        let slot = pos.get_mut(a as usize)?;
        if *slot != u32::MAX {
            return None;
        }
        *slot = i as u32;
    }
    Some(pos)
}

/// Checks that `order` linearly realizes `ens`: every column's atoms occupy
/// consecutive positions. This is the consecutive-ones certificate.
pub fn verify_linear(ens: &Ensemble, order: &[Atom]) -> Result<(), Violation> {
    let pos = positions(ens.n_atoms(), order).ok_or(Violation::NotAPermutation)?;
    for (ci, col) in ens.columns().iter().enumerate() {
        if col.len() <= 1 {
            continue;
        }
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        for &a in col {
            let p = pos[a as usize];
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let span = (hi - lo + 1) as usize;
        if span != col.len() {
            return Err(Violation::Gap { column: ci, span, len: col.len() });
        }
    }
    Ok(())
}

/// Checks that `order`, read cyclically, realizes `ens`: every column's
/// atoms form a contiguous arc. This is the circular-ones certificate
/// (Section 2's cycle-graphic ensembles).
///
/// A set is an arc iff either it or its complement is an interval of the
/// linearization, so each column is checked directly in `O(|C|)` by
/// counting boundary crossings.
pub fn verify_circular(ens: &Ensemble, order: &[Atom]) -> Result<(), Violation> {
    let n = ens.n_atoms();
    let pos = positions(n, order).ok_or(Violation::NotAPermutation)?;
    let mut in_col = vec![false; n];
    for (ci, col) in ens.columns().iter().enumerate() {
        if col.len() <= 1 || col.len() >= n.saturating_sub(1) {
            // 0, 1, n-1 and n atoms are always an arc of a cycle... except
            // n-1 which is the complement of a single atom: also an arc.
            continue;
        }
        for &a in col {
            in_col[pos[a as usize] as usize] = true;
        }
        // Count the number of maximal runs of `true` cyclically: it must be 1.
        let mut runs = 0;
        for i in 0..n {
            let prev = in_col[(i + n - 1) % n];
            if in_col[i] && !prev {
                runs += 1;
            }
        }
        for &a in col {
            in_col[pos[a as usize] as usize] = false;
        }
        if runs != 1 {
            return Err(Violation::Gap { column: ci, span: runs, len: col.len() });
        }
    }
    Ok(())
}

/// Brute-force C1P decision by enumerating all atom permutations.
/// Exponential — only for `n_atoms ≤ ~9`; the differential-test oracle.
pub fn brute_force_linear(ens: &Ensemble) -> Option<Vec<Atom>> {
    let n = ens.n_atoms();
    assert!(n <= 10, "brute force limited to 10 atoms");
    let mut order: Vec<Atom> = (0..n as Atom).collect();
    // Heap's algorithm, checking each permutation.
    fn heap(ens: &Ensemble, order: &mut Vec<Atom>, k: usize) -> Option<Vec<Atom>> {
        if k <= 1 {
            return verify_linear(ens, order).ok().map(|_| order.clone());
        }
        for i in 0..k {
            if let Some(sol) = heap(ens, order, k - 1) {
                return Some(sol);
            }
            if k.is_multiple_of(2) {
                order.swap(i, k - 1);
            } else {
                order.swap(0, k - 1);
            }
        }
        None
    }
    if n == 0 {
        return verify_linear(ens, &order).ok().map(|_| order);
    }
    heap(ens, &mut order, n)
}

/// Brute-force circular-ones decision (for differential tests of the
/// Case-2 transform). Fixes atom 0 at position 0 — rotations are equivalent.
pub fn brute_force_circular(ens: &Ensemble) -> Option<Vec<Atom>> {
    let n = ens.n_atoms();
    assert!(n <= 10, "brute force limited to 10 atoms");
    if n <= 2 {
        let order: Vec<Atom> = (0..n as Atom).collect();
        return verify_circular(ens, &order).ok().map(|_| order);
    }
    let mut rest: Vec<Atom> = (1..n as Atom).collect();
    fn heap(ens: &Ensemble, rest: &mut Vec<Atom>, k: usize) -> Option<Vec<Atom>> {
        if k <= 1 {
            let mut order = Vec::with_capacity(rest.len() + 1);
            order.push(0);
            order.extend_from_slice(rest);
            return verify_circular(ens, &order).ok().map(|_| order);
        }
        for i in 0..k {
            if let Some(sol) = heap(ens, rest, k - 1) {
                return Some(sol);
            }
            if k.is_multiple_of(2) {
                rest.swap(i, k - 1);
            } else {
                rest.swap(0, k - 1);
            }
        }
        None
    }
    let k = rest.len();
    heap(ens, &mut rest, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ens(n: usize, cols: Vec<Vec<Atom>>) -> Ensemble {
        Ensemble::from_columns(n, cols).unwrap()
    }

    #[test]
    fn linear_accepts_and_rejects() {
        let e = ens(4, vec![vec![0, 1], vec![1, 2, 3]]);
        assert!(verify_linear(&e, &[0, 1, 2, 3]).is_ok());
        assert!(verify_linear(&e, &[3, 2, 1, 0]).is_ok()); // reversal always ok
        assert_eq!(
            verify_linear(&e, &[1, 0, 2, 3]),
            Err(Violation::Gap { column: 1, span: 4, len: 3 })
        );
    }

    #[test]
    fn linear_rejects_non_permutations() {
        let e = ens(3, vec![]);
        assert_eq!(verify_linear(&e, &[0, 1]), Err(Violation::NotAPermutation));
        assert_eq!(verify_linear(&e, &[0, 1, 1]), Err(Violation::NotAPermutation));
        assert_eq!(verify_linear(&e, &[0, 1, 5]), Err(Violation::NotAPermutation));
    }

    #[test]
    fn circular_wraps() {
        // {3,0} is an arc of the cycle 0,1,2,3 but not an interval.
        let e = ens(4, vec![vec![0, 3]]);
        assert!(verify_circular(&e, &[0, 1, 2, 3]).is_ok());
        assert!(verify_linear(&e, &[0, 1, 2, 3]).is_err());
        // {0,2} is not an arc of 0,1,2,3.
        let e2 = ens(4, vec![vec![0, 2]]);
        assert!(verify_circular(&e2, &[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn circular_big_columns_are_arcs() {
        // complement of a single atom is always an arc.
        let e = ens(4, vec![vec![0, 1, 3]]);
        assert!(verify_circular(&e, &[0, 1, 2, 3]).is_ok());
    }

    #[test]
    fn brute_force_finds_cycle_obstruction() {
        // The 3-cycle matrix M_I(1): pairwise adjacency demands are cyclic.
        let e = ens(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert_eq!(brute_force_linear(&e), None);
        // But it IS circular-ones.
        assert!(brute_force_circular(&e).is_some());
    }

    #[test]
    fn brute_force_solves_interval_instance() {
        let e = ens(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4]]);
        let sol = brute_force_linear(&e).expect("is c1p");
        assert!(verify_linear(&e, &sol).is_ok());
    }

    #[test]
    fn empty_and_tiny() {
        let e = ens(0, vec![]);
        assert_eq!(brute_force_linear(&e), Some(vec![]));
        let e1 = ens(1, vec![vec![0]]);
        assert_eq!(brute_force_linear(&e1), Some(vec![0]));
    }
}

//! Ensemble I/O: the dense textual (0,1)-matrix format used by examples and
//! the experiment harness, plus the versioned compact binary **wire format**
//! used by the serving layer (`c1p-engine` / `c1pd`).
//!
//! # Text format
//!
//! One row per line, characters `0`/`1`; spaces, tabs and commas between
//! entries are ignored, `#` starts a comment line, blank lines are skipped.
//! Parsing is hardened for untrusted input: every malformed shape (garbage
//! characters, embedded NUL, ragged rows, separator-only lines, absurdly
//! long single lines) returns a structured [`EnsembleError`] carrying the
//! 1-based line number — never a panic.
//!
//! # Wire format (version 1)
//!
//! A little-endian, varint-based CSR encoding (see DESIGN.md §8 for the
//! byte-level spec):
//!
//! ```text
//! header   := magic "C1PW" | version u8 | kind u8 (0 = ensemble, 1 = verdict)
//! varint   := LEB128, 64-bit, max 10 bytes
//! ensemble := header | n_atoms | n_cols | col*
//! col      := len | first_atom | (gap-1)*          -- strictly ascending
//! verdict  := header | 1 | order_len | atom*        -- accept: witness order
//!           | header | 2 | family u8 | k | atoms | cols   -- reject: Tucker
//! ```
//!
//! Sorted atom lists are delta-encoded (first value, then `gap - 1` per
//! successor), so decoded columns are strictly ascending *by construction*;
//! range validation is delegated to [`Ensemble::from_sorted_columns`].
//! Decoding bounds-checks every field against the remaining payload before
//! allocating, and rejects trailing bytes, so a hostile peer can neither
//! panic the decoder nor make it over-allocate.

use crate::ensemble::{Atom, Ensemble, EnsembleError, Matrix01};
use crate::tucker::TuckerFamily;

/// Upper bound on a single input line for [`parse_matrix`] (64 MiB). A
/// dense row of that width is far beyond every workload in this workspace;
/// the guard turns a 100 MB single-line input into a structured error
/// instead of a byte-by-byte scan of hostile garbage.
pub const MAX_LINE_BYTES: usize = 64 << 20;

/// Parses a dense matrix. Rows = atoms, columns = ensemble columns.
///
/// ```
/// let m = c1p_matrix::io::parse_matrix("110\n011\n").unwrap();
/// assert_eq!(m.n_rows(), 2);
/// assert_eq!(m.n_cols(), 3);
/// ```
pub fn parse_matrix(text: &str) -> Result<Matrix01, EnsembleError> {
    let mut rows: Vec<Vec<u8>> = Vec::new();
    let mut width: Option<usize> = None;
    for (ln, line) in text.lines().enumerate() {
        if line.len() > MAX_LINE_BYTES {
            return Err(EnsembleError::Parse {
                line: ln + 1,
                message: format!(
                    "line is {} bytes, over the {MAX_LINE_BYTES}-byte limit",
                    line.len()
                ),
            });
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row = Vec::with_capacity(line.len());
        for ch in line.chars() {
            match ch {
                '0' => row.push(0),
                '1' => row.push(1),
                ' ' | '\t' | ',' => {}
                other => {
                    return Err(EnsembleError::Parse {
                        line: ln + 1,
                        message: format!("unexpected character {other:?}"),
                    })
                }
            }
        }
        if row.is_empty() {
            return Err(EnsembleError::Parse {
                line: ln + 1,
                message: "line contains separators but no matrix entries".to_string(),
            });
        }
        match width {
            None => width = Some(row.len()),
            Some(w) if w != row.len() => {
                return Err(EnsembleError::Parse {
                    line: ln + 1,
                    message: format!("row has {} entries, expected {w}", row.len()),
                })
            }
            Some(_) => {}
        }
        rows.push(row);
    }
    Matrix01::from_rows(&rows)
}

/// Parses a dense matrix directly into an ensemble.
pub fn parse_ensemble(text: &str) -> Result<Ensemble, EnsembleError> {
    Ok(parse_matrix(text)?.to_ensemble())
}

/// Formats an ensemble as a dense matrix string (inverse of
/// [`parse_ensemble`] up to empty trailing columns).
pub fn format_ensemble(ens: &Ensemble) -> String {
    ens.to_matrix().to_string()
}

/// The running example of the paper's Fig. 2: the 8×7 matrix (rows 1–8,
/// columns a–g) used to illustrate the GAP conditions and the merge. In our
/// convention its 8 rows are the atoms and its 7 columns are the ensemble
/// columns.
pub fn fig2_matrix() -> Ensemble {
    // Verbatim from the paper (Fig. 2), rows 1,2,7,8,3,4,5,6 as printed:
    //   1: 1000100     a,e
    //   2: 1001100     a,d,e
    //   7: 0010011     c,f,g
    //   8: 0010001     c,g
    //   3: 1001101     a,d,e,g
    //   4: 0100101     b,e,g
    //   5: 0110101     b,c,e,g
    //   6: 0010111     c,e,f,g
    // Atom numbering follows the printed row order 1,2,7,8,3,4,5,6 → 0..7.
    parse_ensemble(
        "1000100\n\
         1001100\n\
         0010011\n\
         0010001\n\
         1001101\n\
         0100101\n\
         0110101\n\
         0010111\n",
    )
    .expect("fig2 matrix is well-formed")
}

// ---------------------------------------------------------------------
// binary wire format
// ---------------------------------------------------------------------

/// Magic prefix of every wire message.
pub const WIRE_MAGIC: [u8; 4] = *b"C1PW";

/// Current wire format version; bumped on any layout change so a peer
/// running an older build fails with a structured error, not garbage.
pub const WIRE_VERSION: u8 = 1;

const KIND_ENSEMBLE: u8 = 0;
const KIND_VERDICT: u8 = 1;

const VERDICT_ACCEPT: u8 = 1;
const VERDICT_REJECT: u8 = 2;

/// A solve result in wire form: the accept side carries the witness atom
/// order, the reject side the Tucker-certificate coordinates (family plus
/// the submatrix's atom rows and column ids, both sorted ascending).
///
/// This is deliberately a *matrix-level* type: `c1p-engine` converts its
/// richer verdicts (which also carry the solver's rejection evidence) down
/// to this, and clients re-verify with `c1p_cert::verify_witness` without
/// trusting the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireVerdict {
    /// C1P: a witness order of the atoms (checkable with
    /// [`crate::verify_linear`]).
    Accept {
        /// The witness atom order.
        order: Vec<Atom>,
    },
    /// Not C1P: a Tucker submatrix certificate.
    Reject {
        /// The claimed obstruction family.
        family: TuckerFamily,
        /// Sorted atom rows of the witness submatrix.
        atom_rows: Vec<Atom>,
        /// Sorted column ids of the witness submatrix.
        column_ids: Vec<u32>,
    },
}

/// Encodes an ensemble in the compact CSR wire form.
pub fn encode_ensemble(ens: &Ensemble) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 2 * ens.n_columns() + ens.p());
    put_header(&mut out, KIND_ENSEMBLE);
    put_varint(ens.n_atoms() as u64, &mut out);
    put_varint(ens.n_columns() as u64, &mut out);
    for col in ens.columns() {
        put_varint(col.len() as u64, &mut out);
        put_sorted(col, &mut out);
    }
    out
}

/// Decodes an ensemble; the exact inverse of [`encode_ensemble`].
///
/// Never panics on malformed input: every structural defect (bad magic,
/// unknown version, truncated varint, over-declared sizes, out-of-range
/// atoms, trailing bytes) returns a structured [`EnsembleError`].
pub fn decode_ensemble(buf: &[u8]) -> Result<Ensemble, EnsembleError> {
    let mut r = Reader::new(buf);
    r.expect_header(KIND_ENSEMBLE)?;
    let n_atoms = r.bounded_varint(u32::MAX as u64, "n_atoms")? as usize;
    let n_cols = r.bounded_varint(r.remaining() as u64, "column count")? as usize;
    let mut cols = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let len = r.bounded_varint(r.remaining() as u64, "column length")? as usize;
        cols.push(r.sorted_list(len)?);
    }
    r.expect_end()?;
    Ensemble::from_sorted_columns(n_atoms, cols)
}

/// Encodes a verdict in wire form.
///
/// # Panics
///
/// If a reject's `atom_rows`/`column_ids` are not strictly ascending (the
/// documented [`WireVerdict`] contract) — failing loudly beats silently
/// emitting a corrupt encoding.
pub fn encode_verdict(v: &WireVerdict) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_header(&mut out, KIND_VERDICT);
    match v {
        WireVerdict::Accept { order } => {
            out.push(VERDICT_ACCEPT);
            put_varint(order.len() as u64, &mut out);
            for &a in order {
                put_varint(a as u64, &mut out);
            }
        }
        WireVerdict::Reject { family, atom_rows, column_ids } => {
            out.push(VERDICT_REJECT);
            let (tag, k) = family_tag(*family);
            out.push(tag);
            put_varint(k as u64, &mut out);
            put_varint(atom_rows.len() as u64, &mut out);
            put_sorted(atom_rows, &mut out);
            put_varint(column_ids.len() as u64, &mut out);
            put_sorted(column_ids, &mut out);
        }
    }
    out
}

/// Decodes a verdict; the exact inverse of [`encode_verdict`]. Same
/// never-panics contract as [`decode_ensemble`].
pub fn decode_verdict(buf: &[u8]) -> Result<WireVerdict, EnsembleError> {
    let mut r = Reader::new(buf);
    r.expect_header(KIND_VERDICT)?;
    let verdict = match r.u8("verdict tag")? {
        VERDICT_ACCEPT => {
            let len = r.bounded_varint(r.remaining() as u64, "order length")? as usize;
            let mut order = Vec::with_capacity(len);
            for _ in 0..len {
                order.push(r.bounded_varint(u32::MAX as u64, "order atom")? as Atom);
            }
            WireVerdict::Accept { order }
        }
        VERDICT_REJECT => {
            let tag = r.u8("family tag")?;
            let k = r.bounded_varint(u32::MAX as u64, "family parameter")? as usize;
            let family = family_from_tag(tag, k)
                .ok_or_else(|| r.err(format!("unknown Tucker family tag {tag}")))?;
            let len = r.bounded_varint(r.remaining() as u64, "atom row count")? as usize;
            let atom_rows = r.sorted_list(len)?;
            let len = r.bounded_varint(r.remaining() as u64, "column id count")? as usize;
            let column_ids = r.sorted_list(len)?;
            WireVerdict::Reject { family, atom_rows, column_ids }
        }
        other => return Err(r.err(format!("unknown verdict tag {other}"))),
    };
    r.expect_end()?;
    Ok(verdict)
}

// ---------------------------------------------------------------------
// checksummed record framing (write-ahead logs, snapshots)
// ---------------------------------------------------------------------

/// FNV-1a over a byte slice — the workspace's standing integrity hash
/// (the incremental session stream hash folds with the same constants).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a framed record failed to parse — the distinction durability code
/// keys recovery decisions on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The buffer ends before the record completes. In an append-only
    /// file this can only be the physical tail (a torn final write): the
    /// safe response is to truncate it away, never to guess at it.
    Torn,
    /// The record is structurally complete but its checksum does not
    /// match: damage, not a torn append. The safe response is to
    /// quarantine the container, not to trust anything after it.
    Corrupt {
        /// Byte offset of the failing record in the scanned buffer.
        offset: usize,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Torn => write!(f, "record torn at the buffer tail"),
            RecordError::Corrupt { offset } => {
                write!(f, "record checksum mismatch at offset {offset}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Frames one payload as a checksummed record:
/// `len u32 LE | payload | aux u64 LE | crc u64 LE`, where `crc` is
/// [`fnv1a`] over everything before it. The `aux` word rides inside the
/// checksum — the WAL stores the post-push session stream hash there, so
/// a record binds both *what* was appended and the state it produced.
pub fn append_record(out: &mut Vec<u8>, payload: &[u8], aux: u64) {
    let start = out.len();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&aux.to_le_bytes());
    let crc = fnv1a(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// A record parsed back out of a buffer by [`split_record`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record<'a> {
    /// The framed payload bytes.
    pub payload: &'a [u8],
    /// The auxiliary word (the WAL's post-push stream hash).
    pub aux: u64,
    /// Bytes this record occupied, prefix through checksum.
    pub consumed: usize,
}

/// Parses the record at `offset` in `buf`; the exact inverse of one
/// [`append_record`] call. Distinguishes a torn tail (buffer ends before
/// the record completes — also the classification when a complete-looking
/// final record fails its checksum, since a torn page-aligned append can
/// zero-fill rather than shorten) from mid-buffer corruption (checksum
/// mismatch with more data after it). Never panics, never allocates.
pub fn split_record(buf: &[u8], offset: usize) -> Result<Record<'_>, RecordError> {
    let rest = &buf[offset..];
    let Some(len_bytes) = rest.get(..4) else {
        return Err(RecordError::Torn);
    };
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    // 4 len + payload + 8 aux + 8 crc; saturating keeps hostile lengths
    // from overflowing the bound check itself
    let total = len.saturating_add(20);
    if rest.len() < total {
        return Err(RecordError::Torn);
    }
    let crc = u64::from_le_bytes(rest[total - 8..total].try_into().unwrap());
    if fnv1a(&rest[..total - 8]) != crc {
        // checksum failure exactly at the buffer tail is indistinguishable
        // from a torn final append; anywhere else it is damage
        if rest.len() == total {
            return Err(RecordError::Torn);
        }
        return Err(RecordError::Corrupt { offset });
    }
    let aux = u64::from_le_bytes(rest[total - 16..total - 8].try_into().unwrap());
    Ok(Record { payload: &rest[4..4 + len], aux, consumed: total })
}

fn family_tag(f: TuckerFamily) -> (u8, usize) {
    match f {
        TuckerFamily::MI(k) => (0, k),
        TuckerFamily::MII(k) => (1, k),
        TuckerFamily::MIII(k) => (2, k),
        TuckerFamily::MIV => (3, 0),
        TuckerFamily::MV => (4, 0),
    }
}

fn family_from_tag(tag: u8, k: usize) -> Option<TuckerFamily> {
    match tag {
        0 => Some(TuckerFamily::MI(k)),
        1 => Some(TuckerFamily::MII(k)),
        2 => Some(TuckerFamily::MIII(k)),
        3 => Some(TuckerFamily::MIV),
        4 => Some(TuckerFamily::MV),
        _ => None,
    }
}

fn put_header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
}

/// LEB128 unsigned varint.
fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Delta-encodes a strictly ascending `u32` list: first value verbatim,
/// then `gap - 1` per successor. Panics (in every build profile) on a
/// non-ascending list — a wrapped subtraction would silently emit a
/// corrupt encoding, which is strictly worse than failing loudly at the
/// encode site.
fn put_sorted(xs: &[u32], out: &mut Vec<u8>) {
    let mut prev = 0u64;
    for (i, &x) in xs.iter().enumerate() {
        if i == 0 {
            put_varint(x as u64, out);
        } else {
            let gap = (x as u64)
                .checked_sub(prev + 1)
                .expect("wire encoding requires a strictly ascending list");
            put_varint(gap, out);
        }
        prev = x as u64;
    }
}

/// Bounds-checked cursor over a wire payload; every error carries the
/// current byte offset.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn err(&self, message: String) -> EnsembleError {
        EnsembleError::Wire { offset: self.pos, message }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self, what: &str) -> Result<u8, EnsembleError> {
        let Some(&b) = self.buf.get(self.pos) else {
            return Err(self.err(format!("truncated before {what}")));
        };
        self.pos += 1;
        Ok(b)
    }

    fn expect_header(&mut self, kind: u8) -> Result<(), EnsembleError> {
        if self.buf.len() < 6 {
            return Err(self.err("payload shorter than the 6-byte header".to_string()));
        }
        if self.buf[..4] != WIRE_MAGIC {
            return Err(self.err(format!("bad magic {:?}", &self.buf[..4])));
        }
        self.pos = 4;
        let version = self.u8("version")?;
        if version != WIRE_VERSION {
            return Err(self.err(format!("unsupported wire version {version}")));
        }
        let k = self.u8("kind")?;
        if k != kind {
            return Err(self.err(format!("wrong message kind {k}, expected {kind}")));
        }
        Ok(())
    }

    fn varint(&mut self, what: &str) -> Result<u64, EnsembleError> {
        let mut v = 0u64;
        for shift in 0..10 {
            let b = self.u8(what)?;
            let bits = (b & 0x7f) as u64;
            if shift == 9 && b > 1 {
                return Err(self.err(format!("varint overflow in {what}")));
            }
            v |= bits << (7 * shift);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!("loop returns within 10 bytes")
    }

    /// A varint that also acts as a size/field guard: values above `max`
    /// are structural errors (e.g. a declared element count larger than
    /// the remaining payload could possibly encode — each element takes
    /// at least one byte — which would otherwise drive a huge
    /// preallocation from a tiny hostile message).
    fn bounded_varint(&mut self, max: u64, what: &str) -> Result<u64, EnsembleError> {
        let at = self.pos;
        let v = self.varint(what)?;
        if v > max {
            return Err(EnsembleError::Wire {
                offset: at,
                message: format!("{what} {v} exceeds limit {max}"),
            });
        }
        Ok(v)
    }

    /// Decodes `len` delta-encoded values into a strictly ascending list.
    fn sorted_list(&mut self, len: usize) -> Result<Vec<u32>, EnsembleError> {
        let mut xs = Vec::with_capacity(len);
        let mut prev = 0u64;
        for i in 0..len {
            let d = self.varint("delta-encoded value")?;
            // prev < 2^32 (checked below), but d can be any u64 on hostile
            // input — the reconstruction must not overflow
            let v = if i == 0 {
                d
            } else {
                (prev + 1)
                    .checked_add(d)
                    .ok_or_else(|| self.err(format!("delta {d} overflows the value")))?
            };
            if v > u32::MAX as u64 {
                return Err(self.err(format!("value {v} overflows u32")));
            }
            xs.push(v as u32);
            prev = v;
        }
        Ok(xs)
    }

    fn expect_end(&self) -> Result<(), EnsembleError> {
        if self.pos != self.buf.len() {
            return Err(self.err(format!("{} trailing bytes after payload", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let text = "101\n010\n111\n";
        let m = parse_matrix(text).unwrap();
        assert_eq!(m.to_string(), text);
    }

    #[test]
    fn parse_skips_comments_and_spacing() {
        let m = parse_matrix("# header\n1 0 1\n\n0,1,1\n").unwrap();
        assert_eq!(m.to_string(), "101\n011\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_matrix("10x1\n").is_err());
    }

    #[test]
    fn parse_rejects_ragged_with_line_number() {
        let err = parse_matrix("101\n10\n").unwrap_err();
        assert_eq!(
            err,
            EnsembleError::Parse { line: 2, message: "row has 2 entries, expected 3".into() }
        );
    }

    #[test]
    fn parse_rejects_separator_only_lines() {
        let err = parse_matrix("11\n , ,\n11\n").unwrap_err();
        assert!(matches!(err, EnsembleError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn fig2_shape() {
        let ens = fig2_matrix();
        assert_eq!(ens.n_atoms(), 8);
        assert_eq!(ens.n_columns(), 7);
        assert_eq!(ens.p(), 25);
    }

    #[test]
    fn wire_round_trips_fig2_and_text() {
        let ens = fig2_matrix();
        let bytes = encode_ensemble(&ens);
        assert_eq!(decode_ensemble(&bytes).unwrap(), ens);
        // consistency with the dense text format
        let reparsed = parse_ensemble(&format_ensemble(&ens)).unwrap();
        assert_eq!(decode_ensemble(&encode_ensemble(&reparsed)).unwrap(), ens);
    }

    #[test]
    fn wire_round_trips_edge_shapes() {
        for ens in [
            Ensemble::new(0),
            Ensemble::new(5),
            Ensemble::from_columns(3, vec![vec![], vec![0, 1, 2], vec![2]]).unwrap(),
            Ensemble::from_columns(1, vec![vec![0], vec![0]]).unwrap(),
        ] {
            let bytes = encode_ensemble(&ens);
            assert_eq!(decode_ensemble(&bytes).unwrap(), ens, "{ens:?}");
        }
    }

    #[test]
    fn wire_verdict_round_trips() {
        for v in [
            WireVerdict::Accept { order: vec![2, 0, 1, 3] },
            WireVerdict::Accept { order: vec![] },
            WireVerdict::Reject {
                family: TuckerFamily::MIII(2),
                atom_rows: vec![1, 4, 9, 10, 11],
                column_ids: vec![0, 7, 8, 30],
            },
            WireVerdict::Reject { family: TuckerFamily::MV, atom_rows: vec![], column_ids: vec![] },
        ] {
            assert_eq!(decode_verdict(&encode_verdict(&v)).unwrap(), v, "{v:?}");
        }
    }

    #[test]
    fn wire_rejects_malformed_headers() {
        let ens = fig2_matrix();
        let good = encode_ensemble(&ens);
        // short, bad magic, bad version, wrong kind
        assert!(matches!(decode_ensemble(&[]), Err(EnsembleError::Wire { .. })));
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(decode_ensemble(&bad).is_err());
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(decode_ensemble(&bad).is_err());
        assert!(decode_ensemble(&encode_verdict(&WireVerdict::Accept { order: vec![] })).is_err());
    }

    #[test]
    fn wire_rejects_overdeclared_sizes_and_trailing_bytes() {
        // header claiming 2^30 columns in a 10-byte message must fail on the
        // bound check, not attempt the allocation
        let mut bad = Vec::new();
        put_header(&mut bad, KIND_ENSEMBLE);
        put_varint(8, &mut bad);
        put_varint(1 << 30, &mut bad);
        let err = decode_ensemble(&bad).unwrap_err();
        assert!(matches!(err, EnsembleError::Wire { .. }), "{err}");
        // trailing garbage after a valid payload
        let mut bad = encode_ensemble(&fig2_matrix());
        bad.push(0);
        assert!(decode_ensemble(&bad).is_err());
    }

    #[test]
    fn wire_rejects_overflowing_deltas_without_panicking() {
        // hostile 10-byte LEB128 delta of u64::MAX after a first value of 0:
        // reconstruction must error, not overflow (debug) or wrap (release)
        let mut bad = Vec::new();
        put_header(&mut bad, KIND_ENSEMBLE);
        put_varint(1, &mut bad); // n_atoms
        put_varint(1, &mut bad); // n_cols
        put_varint(2, &mut bad); // column length
        put_varint(0, &mut bad); // first atom
        put_varint(u64::MAX, &mut bad); // delta
        let err = decode_ensemble(&bad).unwrap_err();
        assert!(matches!(err, EnsembleError::Wire { .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn encoding_a_non_ascending_witness_panics_loudly() {
        encode_verdict(&WireVerdict::Reject {
            family: TuckerFamily::MV,
            atom_rows: vec![0, 1],
            column_ids: vec![5, 3],
        });
    }

    #[test]
    fn record_framing_round_trips_and_classifies_failures() {
        let mut buf = Vec::new();
        append_record(&mut buf, b"first", 0xAA);
        append_record(&mut buf, b"", 0xBB);
        append_record(&mut buf, b"third-record", 0xCC);
        let mut at = 0;
        let mut seen = Vec::new();
        while at < buf.len() {
            let r = split_record(&buf, at).unwrap();
            seen.push((r.payload.to_vec(), r.aux));
            at += r.consumed;
        }
        assert_eq!(
            seen,
            vec![(b"first".to_vec(), 0xAA), (Vec::new(), 0xBB), (b"third-record".to_vec(), 0xCC)]
        );
        // every strict prefix of the final record is Torn
        let tail_start = buf.len() - (12 + 20);
        for cut in tail_start..buf.len() {
            assert_eq!(split_record(&buf[..cut], tail_start), Err(RecordError::Torn), "cut {cut}");
        }
        // a bit flip mid-buffer (records follow) is Corrupt with offset
        let mut bad = buf.clone();
        bad[6] ^= 0x40;
        assert_eq!(split_record(&bad, 0), Err(RecordError::Corrupt { offset: 0 }));
        // the same flip in the *final* record reads as a torn tail
        let mut bad = buf.clone();
        bad[tail_start + 6] ^= 0x40;
        assert_eq!(split_record(&bad, tail_start), Err(RecordError::Torn));
        // a hostile length cannot overflow the bound check
        let mut hostile = u32::MAX.to_le_bytes().to_vec();
        hostile.extend_from_slice(&[0u8; 32]);
        assert_eq!(split_record(&hostile, 0), Err(RecordError::Torn));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // standard FNV-1a test vectors (64-bit)
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn wire_rejects_out_of_range_atoms() {
        // column {0,5} in a 3-atom ensemble: delta decode succeeds, range
        // validation in from_sorted_columns must reject
        let mut bad = Vec::new();
        put_header(&mut bad, KIND_ENSEMBLE);
        put_varint(3, &mut bad);
        put_varint(1, &mut bad);
        put_varint(2, &mut bad);
        put_sorted(&[0, 5], &mut bad);
        assert_eq!(
            decode_ensemble(&bad).unwrap_err(),
            EnsembleError::AtomOutOfRange { column: 0, atom: 5 }
        );
    }
}

//! Textual (0,1)-matrix I/O: the dense format used by examples and the
//! experiment harness ("one row per line, characters `0`/`1`", `#` comments
//! and blank lines ignored).

use crate::ensemble::{Ensemble, EnsembleError, Matrix01};

/// Parses a dense matrix. Rows = atoms, columns = ensemble columns.
///
/// ```
/// let m = c1p_matrix::io::parse_matrix("110\n011\n").unwrap();
/// assert_eq!(m.n_rows(), 2);
/// assert_eq!(m.n_cols(), 3);
/// ```
pub fn parse_matrix(text: &str) -> Result<Matrix01, EnsembleError> {
    let mut rows: Vec<Vec<u8>> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row = Vec::with_capacity(line.len());
        for ch in line.chars() {
            match ch {
                '0' => row.push(0),
                '1' => row.push(1),
                ' ' | '\t' | ',' => {}
                other => {
                    return Err(EnsembleError::Parse {
                        line: ln + 1,
                        message: format!("unexpected character {other:?}"),
                    })
                }
            }
        }
        rows.push(row);
    }
    Matrix01::from_rows(&rows)
}

/// Parses a dense matrix directly into an ensemble.
pub fn parse_ensemble(text: &str) -> Result<Ensemble, EnsembleError> {
    Ok(parse_matrix(text)?.to_ensemble())
}

/// Formats an ensemble as a dense matrix string (inverse of
/// [`parse_ensemble`] up to empty trailing columns).
pub fn format_ensemble(ens: &Ensemble) -> String {
    ens.to_matrix().to_string()
}

/// The running example of the paper's Fig. 2: the 8×7 matrix (rows 1–8,
/// columns a–g) used to illustrate the GAP conditions and the merge. In our
/// convention its 8 rows are the atoms and its 7 columns are the ensemble
/// columns.
pub fn fig2_matrix() -> Ensemble {
    // Verbatim from the paper (Fig. 2), rows 1,2,7,8,3,4,5,6 as printed:
    //   1: 1000100     a,e
    //   2: 1001100     a,d,e
    //   7: 0010011     c,f,g
    //   8: 0010001     c,g
    //   3: 1001101     a,d,e,g
    //   4: 0100101     b,e,g
    //   5: 0110101     b,c,e,g
    //   6: 0010111     c,e,f,g
    // Atom numbering follows the printed row order 1,2,7,8,3,4,5,6 → 0..7.
    parse_ensemble(
        "1000100\n\
         1001100\n\
         0010011\n\
         0010001\n\
         1001101\n\
         0100101\n\
         0110101\n\
         0010111\n",
    )
    .expect("fig2 matrix is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let text = "101\n010\n111\n";
        let m = parse_matrix(text).unwrap();
        assert_eq!(m.to_string(), text);
    }

    #[test]
    fn parse_skips_comments_and_spacing() {
        let m = parse_matrix("# header\n1 0 1\n\n0,1,1\n").unwrap();
        assert_eq!(m.to_string(), "101\n011\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_matrix("10x1\n").is_err());
    }

    #[test]
    fn parse_rejects_ragged() {
        assert!(parse_matrix("101\n10\n").is_err());
    }

    #[test]
    fn fig2_shape() {
        let ens = fig2_matrix();
        assert_eq!(ens.n_atoms(), 8);
        assert_eq!(ens.n_columns(), 7);
        assert_eq!(ens.p(), 25);
    }
}

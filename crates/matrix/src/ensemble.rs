//! The ensemble `(A, C)` of the paper's Section 2, and the dense
//! (0,1)-matrix view it abstracts.
//!
//! Conventions used throughout the workspace:
//!
//! * atoms are `0..n_atoms` and are the objects being linearly ordered
//!   (the paper's set `A`; the rows of the abstract's matrix, the STS probes
//!   of Section 1.1);
//! * a *column* is a sorted, duplicate-free subset of the atoms (the paper's
//!   `C ∈ 𝒞`; a clone fingerprint in Section 1.1);
//! * `p` is the sum of column cardinalities — the paper's input-size
//!   parameter for Theorem 9.

use std::fmt;

/// An atom identifier (an element of the paper's set `A`).
pub type Atom = u32;

/// Errors raised while constructing or validating an [`Ensemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnsembleError {
    /// A column referenced an atom `>= n_atoms`.
    AtomOutOfRange { column: usize, atom: Atom },
    /// A column listed the same atom twice.
    DuplicateAtom { column: usize, atom: Atom },
    /// A column was not sorted ascending (only from `from_sorted_columns`).
    UnsortedColumn { column: usize },
    /// A dense matrix row had the wrong width.
    RaggedMatrix { row: usize, expected: usize, found: usize },
    /// Parse error for textual matrices.
    Parse { line: usize, message: String },
    /// Decode error for the binary wire format (`io::decode_ensemble` /
    /// `io::decode_verdict`): byte offset of the offending field.
    Wire { offset: usize, message: String },
}

impl fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnsembleError::AtomOutOfRange { column, atom } => {
                write!(f, "column {column} references atom {atom} out of range")
            }
            EnsembleError::DuplicateAtom { column, atom } => {
                write!(f, "column {column} lists atom {atom} more than once")
            }
            EnsembleError::UnsortedColumn { column } => {
                write!(f, "column {column} is not sorted ascending")
            }
            EnsembleError::RaggedMatrix { row, expected, found } => {
                write!(f, "matrix row {row} has {found} entries, expected {expected}")
            }
            EnsembleError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            EnsembleError::Wire { offset, message } => {
                write!(f, "wire decode error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for EnsembleError {}

/// The paper's ensemble `(A, 𝒞)`: `n_atoms` atoms plus a collection of
/// columns, each a sorted subset of the atoms.
///
/// ```
/// use c1p_matrix::Ensemble;
/// let ens = Ensemble::from_columns(4, vec![vec![0, 1], vec![1, 2, 3]]).unwrap();
/// assert_eq!(ens.n_atoms(), 4);
/// assert_eq!(ens.n_columns(), 2);
/// assert_eq!(ens.p(), 5); // Σ|C|, Theorem 9's size parameter
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ensemble {
    n_atoms: usize,
    columns: Vec<Vec<Atom>>,
}

impl fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ensemble(n={}, m={}, p={})", self.n_atoms, self.n_columns(), self.p())
    }
}

impl Ensemble {
    /// An ensemble with `n_atoms` atoms and no columns (every layout works).
    pub fn new(n_atoms: usize) -> Self {
        Ensemble { n_atoms, columns: Vec::new() }
    }

    /// Builds an ensemble from columns given in any order; each column is
    /// sorted and validated (atoms in range, no duplicates).
    pub fn from_columns(
        n_atoms: usize,
        mut columns: Vec<Vec<Atom>>,
    ) -> Result<Self, EnsembleError> {
        for (ci, col) in columns.iter_mut().enumerate() {
            col.sort_unstable();
            for w in col.windows(2) {
                if w[0] == w[1] {
                    return Err(EnsembleError::DuplicateAtom { column: ci, atom: w[0] });
                }
            }
            if let Some(&last) = col.last() {
                if last as usize >= n_atoms {
                    return Err(EnsembleError::AtomOutOfRange { column: ci, atom: last });
                }
            }
        }
        Ok(Ensemble { n_atoms, columns })
    }

    /// Like [`Ensemble::from_columns`] but requires columns pre-sorted
    /// (cheaper; used by generators that already produce sorted intervals).
    pub fn from_sorted_columns(
        n_atoms: usize,
        columns: Vec<Vec<Atom>>,
    ) -> Result<Self, EnsembleError> {
        for (ci, col) in columns.iter().enumerate() {
            for w in col.windows(2) {
                if w[0] >= w[1] {
                    return Err(if w[0] == w[1] {
                        EnsembleError::DuplicateAtom { column: ci, atom: w[0] }
                    } else {
                        EnsembleError::UnsortedColumn { column: ci }
                    });
                }
            }
            if let Some(&last) = col.last() {
                if last as usize >= n_atoms {
                    return Err(EnsembleError::AtomOutOfRange { column: ci, atom: last });
                }
            }
        }
        Ok(Ensemble { n_atoms, columns })
    }

    /// Appends a column (sorted + validated). Panics on invalid input;
    /// intended for tests and small fixtures.
    pub fn push_column(&mut self, mut col: Vec<Atom>) {
        col.sort_unstable();
        col.dedup();
        assert!(col.last().is_none_or(|&a| (a as usize) < self.n_atoms), "atom out of range");
        self.columns.push(col);
    }

    /// Drops every column from index `n_cols` on (no-op if there are
    /// already at most `n_cols` columns). The rollback primitive for
    /// append-only consumers: a rejected incremental push restores the
    /// last accepted state by truncating back to the pre-push column
    /// count.
    pub fn truncate_columns(&mut self, n_cols: usize) {
        self.columns.truncate(n_cols);
    }

    /// Number of atoms `n = |A|`.
    #[inline]
    pub fn n_atoms(&self) -> usize {
        self.n_atoms
    }

    /// Number of columns `m = |𝒞|`.
    #[inline]
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// `p = Σ_C |C|`, the total number of ones — the size parameter of
    /// Theorem 9.
    pub fn p(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// The paper's density factor `f` with `p = nm/f` (Section 5). Returns
    /// `None` for empty instances.
    pub fn density_factor(&self) -> Option<f64> {
        let p = self.p();
        if p == 0 {
            return None;
        }
        Some((self.n_atoms as f64) * (self.n_columns() as f64) / p as f64)
    }

    /// Read-only access to the columns.
    #[inline]
    pub fn columns(&self) -> &[Vec<Atom>] {
        &self.columns
    }

    /// The `ci`-th column.
    #[inline]
    pub fn column(&self, ci: usize) -> &[Atom] {
        &self.columns[ci]
    }

    /// Inverted index: for each atom, the (ascending) list of column ids
    /// containing it. This is the adjacency of the paper's associated
    /// bipartite graph `B` (Section 3).
    pub fn atom_memberships(&self) -> Vec<Vec<u32>> {
        let mut memb = vec![Vec::new(); self.n_atoms];
        for (ci, col) in self.columns.iter().enumerate() {
            for &a in col {
                memb[a as usize].push(ci as u32);
            }
        }
        memb
    }

    /// Connected components of the associated bipartite graph `B` on
    /// `A ∪ 𝒞` (Section 3: "the vertex set of a component of B induces a
    /// unique subensemble"). Atoms contained in no column form singleton
    /// atom-only components. Returns `(atom_sets, column_sets)` per
    /// component.
    pub fn components(&self) -> Vec<(Vec<Atom>, Vec<u32>)> {
        let memb = self.atom_memberships();
        let mut atom_comp = vec![usize::MAX; self.n_atoms];
        let mut col_comp = vec![usize::MAX; self.columns.len()];
        let mut comps: Vec<(Vec<Atom>, Vec<u32>)> = Vec::new();
        let mut stack: Vec<Atom> = Vec::new();
        for start in 0..self.n_atoms {
            if atom_comp[start] != usize::MAX {
                continue;
            }
            let id = comps.len();
            comps.push((Vec::new(), Vec::new()));
            atom_comp[start] = id;
            stack.push(start as Atom);
            while let Some(a) = stack.pop() {
                comps[id].0.push(a);
                for &ci in &memb[a as usize] {
                    if col_comp[ci as usize] == usize::MAX {
                        col_comp[ci as usize] = id;
                        comps[id].1.push(ci);
                        for &b in &self.columns[ci as usize] {
                            if atom_comp[b as usize] == usize::MAX {
                                atom_comp[b as usize] = id;
                                stack.push(b);
                            }
                        }
                    }
                }
            }
        }
        for comp in &mut comps {
            comp.0.sort_unstable();
            comp.1.sort_unstable();
        }
        comps
    }

    /// Restriction of this ensemble to a subset of atoms (the paper's
    /// *subensemble*, Section 3): atoms are renumbered `0..subset.len()` in
    /// the order given; each column is replaced by its restriction. Columns
    /// whose restriction has fewer than `min_keep` atoms are dropped.
    /// Returns the subensemble plus, per kept column, the original column id.
    pub fn restrict(&self, subset: &[Atom], min_keep: usize) -> (Ensemble, Vec<u32>) {
        let all: Vec<u32> = (0..self.columns.len() as u32).collect();
        let mut cols = Vec::new();
        let mut origin = Vec::new();
        for (ci, col) in self.restrict_to(subset, &all).into_iter().enumerate() {
            if col.len() >= min_keep {
                cols.push(col);
                origin.push(ci as u32);
            }
        }
        (Ensemble { n_atoms: subset.len(), columns: cols }, origin)
    }

    /// Restriction of the *named* columns to a subset of atoms: atoms are
    /// renumbered `0..subset.len()` by their position in `subset` (which
    /// need not be sorted), every named column is kept regardless of its
    /// restricted size, and each output column is sorted. The submatrix
    /// primitive behind `c1p-cert`'s witness checker and shrink oracle;
    /// see [`Ensemble::restrict`] for the all-columns/min-size variant.
    pub fn restrict_to(&self, subset: &[Atom], column_ids: &[u32]) -> Vec<Vec<Atom>> {
        let mut place = vec![u32::MAX; self.n_atoms];
        for (i, &a) in subset.iter().enumerate() {
            place[a as usize] = i as u32;
        }
        column_ids
            .iter()
            .map(|&ci| {
                let mut col: Vec<Atom> = self.columns[ci as usize]
                    .iter()
                    .filter_map(|&a| {
                        let p = place[a as usize];
                        (p != u32::MAX).then_some(p)
                    })
                    .collect();
                col.sort_unstable();
                col
            })
            .collect()
    }

    /// Renumbers atoms by a permutation: atom `a` becomes `perm[a]`.
    /// `perm` must be a permutation of `0..n_atoms`.
    pub fn permute_atoms(&self, perm: &[Atom]) -> Ensemble {
        assert_eq!(perm.len(), self.n_atoms);
        let columns = self
            .columns
            .iter()
            .map(|col| {
                let mut c: Vec<Atom> = col.iter().map(|&a| perm[a as usize]).collect();
                c.sort_unstable();
                c
            })
            .collect();
        Ensemble { n_atoms: self.n_atoms, columns }
    }

    /// Dense matrix view (rows = atoms, columns = columns).
    pub fn to_matrix(&self) -> Matrix01 {
        let mut m = Matrix01::zeros(self.n_atoms, self.columns.len());
        for (ci, col) in self.columns.iter().enumerate() {
            for &a in col {
                m.set(a as usize, ci, true);
            }
        }
        m
    }
}

/// A dense (0,1)-matrix with `n_rows × n_cols` bits, row-major, 64 bits per
/// word. Rows correspond to atoms, columns to the ensemble's columns: the
/// C1P question is "permute the rows so each column's ones are consecutive"
/// (the phrasing of the paper's abstract).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix01 {
    n_rows: usize,
    n_cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Matrix01 {
    /// All-zeros matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        let words_per_row = n_cols.div_ceil(64).max(1);
        Matrix01 { n_rows, n_cols, words_per_row, bits: vec![0; words_per_row * n_rows] }
    }

    /// Number of rows (atoms).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        let w = self.bits[r * self.words_per_row + c / 64];
        (w >> (c % 64)) & 1 == 1
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        let w = &mut self.bits[r * self.words_per_row + c / 64];
        if v {
            *w |= 1 << (c % 64);
        } else {
            *w &= !(1 << (c % 64));
        }
    }

    /// Flips entry `(r, c)`, returning the new value.
    pub fn flip(&mut self, r: usize, c: usize) -> bool {
        let v = !self.get(r, c);
        self.set(r, c, v);
        v
    }

    /// Total number of ones (`p`).
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Converts to the column-set representation.
    pub fn to_ensemble(&self) -> Ensemble {
        let mut columns = vec![Vec::new(); self.n_cols];
        for r in 0..self.n_rows {
            for (c, column) in columns.iter_mut().enumerate() {
                if self.get(r, c) {
                    column.push(r as Atom);
                }
            }
        }
        Ensemble { n_atoms: self.n_rows, columns }
    }

    /// Builds from rows of 0/1 bytes.
    pub fn from_rows(rows: &[Vec<u8>]) -> Result<Self, EnsembleError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut m = Matrix01::zeros(n_rows, n_cols);
        for (r, row) in rows.iter().enumerate() {
            if row.len() != n_cols {
                return Err(EnsembleError::RaggedMatrix {
                    row: r,
                    expected: n_cols,
                    found: row.len(),
                });
            }
            for (c, &v) in row.iter().enumerate() {
                if v != 0 {
                    m.set(r, c, true);
                }
            }
        }
        Ok(m)
    }

    /// The transpose (rows ↔ columns) — switches between the "permute rows"
    /// and "permute columns" phrasings of C1P.
    pub fn transpose(&self) -> Matrix01 {
        let mut t = Matrix01::zeros(self.n_cols, self.n_rows);
        for r in 0..self.n_rows {
            for c in 0..self.n_cols {
                if self.get(r, c) {
                    t.set(c, r, true);
                }
            }
        }
        t
    }
}

impl fmt::Display for Matrix01 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.n_rows {
            for c in 0..self.n_cols {
                write!(f, "{}", if self.get(r, c) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Matrix01 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix01({}x{})", self.n_rows, self.n_cols)?;
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensemble_basics() {
        let ens = Ensemble::from_columns(5, vec![vec![3, 1], vec![0, 2, 4]]).unwrap();
        assert_eq!(ens.column(0), &[1, 3]);
        assert_eq!(ens.p(), 5);
        assert_eq!(ens.density_factor(), Some(2.0));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Ensemble::from_columns(3, vec![vec![0, 3]]).unwrap_err();
        assert_eq!(err, EnsembleError::AtomOutOfRange { column: 0, atom: 3 });
    }

    #[test]
    fn rejects_duplicates() {
        let err = Ensemble::from_columns(3, vec![vec![1, 1]]).unwrap_err();
        assert_eq!(err, EnsembleError::DuplicateAtom { column: 0, atom: 1 });
    }

    #[test]
    fn components_split_disjoint_columns() {
        // {0,1} and {2,3} never interact; atom 4 is isolated.
        let ens = Ensemble::from_columns(5, vec![vec![0, 1], vec![2, 3]]).unwrap();
        let comps = ens.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], (vec![0, 1], vec![0]));
        assert_eq!(comps[1], (vec![2, 3], vec![1]));
        assert_eq!(comps[2], (vec![4], vec![]));
    }

    #[test]
    fn restriction_renumbers_and_drops() {
        let ens = Ensemble::from_columns(6, vec![vec![0, 1, 2], vec![4, 5], vec![2, 3]]).unwrap();
        let (sub, origin) = ens.restrict(&[2, 3, 4], 2);
        assert_eq!(sub.n_atoms(), 3);
        // column 2 = {2,3} -> {0,1}; column 0 loses all but atom 2 (dropped);
        // column 1 = {4,5} -> {4}->{2} single, dropped.
        assert_eq!(sub.columns(), &[vec![0, 1]]);
        assert_eq!(origin, vec![2]);
    }

    #[test]
    fn restrict_to_keeps_named_columns_and_renumbers_by_position() {
        let ens = Ensemble::from_columns(6, vec![vec![0, 1, 2], vec![4, 5], vec![2, 3]]).unwrap();
        // unsorted subset: renumbering follows subset position, output sorted
        let cols = ens.restrict_to(&[3, 2, 0], &[0, 2]);
        assert_eq!(cols, vec![vec![1, 2], vec![0, 1]]);
        // named columns are kept even when their restriction is tiny/empty
        let cols = ens.restrict_to(&[0, 1], &[0, 1, 2]);
        assert_eq!(cols, vec![vec![0, 1], vec![], vec![]]);
    }

    #[test]
    fn matrix_round_trip() {
        let ens = Ensemble::from_columns(4, vec![vec![0, 2], vec![1, 2, 3]]).unwrap();
        let m = ens.to_matrix();
        assert_eq!(m.count_ones(), 5);
        assert_eq!(m.to_ensemble(), ens);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn permute_atoms_relabels() {
        let ens = Ensemble::from_columns(3, vec![vec![0, 1]]).unwrap();
        let p = ens.permute_atoms(&[2, 0, 1]);
        assert_eq!(p.columns(), &[vec![0, 2]]);
    }

    #[test]
    fn matrix_display() {
        let m = Matrix01::from_rows(&[vec![1, 0], vec![0, 1]]).unwrap();
        assert_eq!(format!("{m}"), "10\n01\n");
    }
}

//! Tucker's minimal non-C1P obstruction families (Tucker \[19\], cited by the
//! paper for the Case-2 transform; Booth & Lueker \[6\] reproduce the
//! families).
//!
//! A (0,1)-matrix has C1P iff it contains none of `M_I(k), M_II(k),
//! M_III(k)` (`k ≥ 1`), `M_IV`, `M_V` as a submatrix. We state the families
//! in this workspace's ensemble convention (atoms = Tucker's columns — the
//! dimension being permuted; ensemble columns = Tucker's rows), so each
//! generator below is a *certified non-C1P instance* used as the rejection
//! workload for every solver. Each family is brute-force verified non-C1P
//! in the tests.

use crate::ensemble::{Atom, Ensemble};
use std::fmt;

/// A Tucker obstruction family instance, named by family and parameter.
///
/// Produced by [`classify`] (the inverse of the generators below) and
/// carried inside `c1p-cert`'s `TuckerWitness` so rejection certificates
/// name the exact obstruction they exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuckerFamily {
    /// `M_I(k)`: the chordless cycle on `k + 2` atoms.
    MI(usize),
    /// `M_II(k)` on `k + 3` atoms.
    MII(usize),
    /// `M_III(k)` on `k + 3` atoms.
    MIII(usize),
    /// `M_IV` (6 atoms, 4 columns).
    MIV,
    /// `M_V` (5 atoms, 4 columns).
    MV,
}

impl TuckerFamily {
    /// The canonical generator of this family instance.
    pub fn generate(&self) -> Ensemble {
        match *self {
            TuckerFamily::MI(k) => m_i(k),
            TuckerFamily::MII(k) => m_ii(k),
            TuckerFamily::MIII(k) => m_iii(k),
            TuckerFamily::MIV => m_iv(),
            TuckerFamily::MV => m_v(),
        }
    }

    /// Atom count of the canonical generator.
    pub fn n_atoms(&self) -> usize {
        match *self {
            TuckerFamily::MI(k) => k + 2,
            TuckerFamily::MII(k) | TuckerFamily::MIII(k) => k + 3,
            TuckerFamily::MIV => 6,
            TuckerFamily::MV => 5,
        }
    }
}

impl fmt::Display for TuckerFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TuckerFamily::MI(k) => write!(f, "M_I({k})"),
            TuckerFamily::MII(k) => write!(f, "M_II({k})"),
            TuckerFamily::MIII(k) => write!(f, "M_III({k})"),
            TuckerFamily::MIV => write!(f, "M_IV"),
            TuckerFamily::MV => write!(f, "M_V"),
        }
    }
}

/// Classifies `ens` up to atom/column permutation: returns the Tucker
/// family it is isomorphic to, or `None`.
///
/// This is the inverse of the generators: a structural matcher derives a
/// candidate canonical atom relabeling (cycle walk for `M_I`, path walk +
/// far atom for `M_II`/`M_III`, pair/transversal assignment for
/// `M_IV`/`M_V`), then *confirms* it by exact comparison of the relabeled
/// column multiset against the generator — so a positive answer never
/// rests on the structural reasoning alone.
pub fn classify(ens: &Ensemble) -> Option<TuckerFamily> {
    let n = ens.n_atoms();
    let m = ens.n_columns();
    if n < 3 || m < 3 {
        return None;
    }
    let pairs: Vec<&[Atom]> =
        ens.columns().iter().filter(|c| c.len() == 2).map(Vec::as_slice).collect();
    let big: Vec<&[Atom]> =
        ens.columns().iter().filter(|c| c.len() != 2).map(Vec::as_slice).collect();
    // pair-graph adjacency (the forced-adjacency graph of the 2-columns)
    let mut adj: Vec<Vec<Atom>> = vec![Vec::new(); n];
    for c in &pairs {
        adj[c[0] as usize].push(c[1]);
        adj[c[1] as usize].push(c[0]);
    }
    if big.is_empty() && m == n {
        // M_I(k): one chordless cycle through every atom
        let cycle = walk_cycle(&adj, n)?;
        let map = label_by_order(&cycle, n)?;
        return confirmed(ens, TuckerFamily::MI(n - 2), &map);
    }
    if big.is_empty() && n == 4 && m == 3 {
        // M_III(1): a claw — centre adjacent to all three leaves
        let centre = (0..n).find(|&a| adj[a].len() == 3)? as Atom;
        let mut order = vec![centre];
        order.extend((0..n as Atom).filter(|&a| a != centre));
        // canonical labels: centre = 1, leaves = 0, 2, 3 (symmetric)
        let mut map = vec![u32::MAX; n];
        for (canon, &atom) in [1u32, 0, 2, 3].iter().zip(&order) {
            map[atom as usize] = *canon;
        }
        return confirmed(ens, TuckerFamily::MIII(1), &map);
    }
    if n >= 4 && m == n && pairs.len() == n - 2 && big.len() == 2 {
        // M_II(k): a pair path v0..v_{k+1}, a far atom, two (n-1)-columns
        if big.iter().any(|c| c.len() != n - 1) {
            return None;
        }
        return classify_path_family(ens, &adj, n, TuckerFamily::MII(n - 3));
    }
    if n >= 5 && m == n - 1 && pairs.len() == n - 2 && big.len() == 1 && big[0].len() == n - 2 {
        // M_III(k ≥ 2): a pair path, a far atom, one interior ∪ far column
        return classify_path_family(ens, &adj, n, TuckerFamily::MIII(n - 3));
    }
    if n == 6 && m == 4 && pairs.len() == 3 && big.len() == 1 && big[0].len() == 3 {
        // M_IV: three disjoint pairs + a transversal with one atom of each
        let t = big[0];
        let mut map = vec![u32::MAX; n];
        for (i, p) in pairs.iter().enumerate() {
            let hit: Vec<Atom> = p.iter().copied().filter(|a| t.binary_search(a).is_ok()).collect();
            let [x] = hit.as_slice() else { return None };
            let partner = if p[0] == *x { p[1] } else { p[0] };
            map[*x as usize] = 2 * i as u32 + 1;
            map[partner as usize] = 2 * i as u32;
        }
        return confirmed(ens, TuckerFamily::MIV, &map);
    }
    if n == 5 && m == 4 && pairs.len() == 2 && big.len() == 2 {
        // M_V: {0,1}, {0,1,2,3}, {2,3}, {1,2,4}
        let (quad, triple) = match (big[0].len(), big[1].len()) {
            (4, 3) => (big[0], big[1]),
            (3, 4) => (big[1], big[0]),
            _ => return None,
        };
        let far = (0..n as Atom).find(|a| quad.binary_search(a).is_err())?;
        if triple.binary_search(&far).is_err() {
            return None;
        }
        // each pair contributes its triple-atom to positions 1 / 2
        for (p, q) in [(pairs[0], pairs[1]), (pairs[1], pairs[0])] {
            let px = p.iter().copied().find(|a| triple.binary_search(a).is_ok());
            let qx = q.iter().copied().find(|a| triple.binary_search(a).is_ok());
            let (Some(px), Some(qx)) = (px, qx) else { continue };
            let mut map = vec![u32::MAX; n];
            map[px as usize] = 1;
            map[if p[0] == px { p[1] } else { p[0] } as usize] = 0;
            map[qx as usize] = 2;
            map[if q[0] == qx { q[1] } else { q[0] } as usize] = 3;
            map[far as usize] = 4;
            if let Some(fam) = confirmed(ens, TuckerFamily::MV, &map) {
                return Some(fam);
            }
        }
        return None;
    }
    None
}

/// Shared `M_II`/`M_III(k ≥ 2)` matcher: walk the pair path in both
/// directions, label `v0..v_{k+1}` then the far atom last.
fn classify_path_family(
    ens: &Ensemble,
    adj: &[Vec<Atom>],
    n: usize,
    fam: TuckerFamily,
) -> Option<TuckerFamily> {
    let path = walk_path(adj, n - 1)?;
    let far = (0..n as Atom).find(|&a| adj[a as usize].is_empty())?;
    for dir in [false, true] {
        let mut order: Vec<Atom> = path.clone();
        if dir {
            order.reverse();
        }
        order.push(far);
        if let Some(map) = label_by_order(&order, n) {
            if let Some(found) = confirmed(ens, fam, &map) {
                return Some(found);
            }
        }
    }
    None
}

/// `map[atom] = position in `order``; `None` unless `order` is a
/// permutation of `0..n`.
fn label_by_order(order: &[Atom], n: usize) -> Option<Vec<u32>> {
    if order.len() != n {
        return None;
    }
    let mut map = vec![u32::MAX; n];
    for (i, &a) in order.iter().enumerate() {
        if (a as usize) >= n || map[a as usize] != u32::MAX {
            return None;
        }
        map[a as usize] = i as u32;
    }
    Some(map)
}

/// Exact isomorphism confirmation: relabels `ens` by `map` and compares
/// its column multiset against the family's canonical generator.
fn confirmed(ens: &Ensemble, fam: TuckerFamily, map: &[u32]) -> Option<TuckerFamily> {
    if map.contains(&u32::MAX) {
        return None;
    }
    let mut got = ens.permute_atoms(map).columns().to_vec();
    got.sort();
    let mut want = fam.generate().columns().to_vec();
    want.sort();
    (got == want).then_some(fam)
}

/// Walks the 2-regular pair graph as a single cycle through all `n` atoms.
fn walk_cycle(adj: &[Vec<Atom>], n: usize) -> Option<Vec<Atom>> {
    let mut order = Vec::with_capacity(n);
    let mut prev = u32::MAX;
    let mut cur = 0u32;
    for _ in 0..n {
        order.push(cur);
        let nb = &adj[cur as usize];
        if nb.len() != 2 || nb[0] == nb[1] {
            return None;
        }
        let next = if nb[0] != prev { nb[0] } else { nb[1] };
        prev = cur;
        cur = next;
    }
    (cur == 0).then_some(order)
}

/// Walks the pair graph as a single simple path over `len` atoms (two
/// degree-1 endpoints, interior degree 2, everything else degree 0).
fn walk_path(adj: &[Vec<Atom>], len: usize) -> Option<Vec<Atom>> {
    let ends: Vec<Atom> = (0..adj.len() as Atom).filter(|&a| adj[a as usize].len() == 1).collect();
    let [start, _] = ends.as_slice() else { return None };
    let mut order = Vec::with_capacity(len);
    let mut prev = u32::MAX;
    let mut cur = *start;
    for _ in 0..len {
        order.push(cur);
        let nb = &adj[cur as usize];
        match nb.len() {
            1 if nb[0] == prev => break,
            1 | 2 => {
                let next = if nb[0] != prev { nb[0] } else { *nb.get(1)? };
                prev = cur;
                cur = next;
            }
            _ => return None,
        }
    }
    (order.len() == len).then_some(order)
}

/// `M_I(k)`: the chordless-cycle obstruction on `k + 2` atoms: the paths
/// `{i, i+1}` plus the closing pair `{0, k+1}`. The smallest non-C1P matrix
/// is `m_i(1)` (3 atoms × 3 columns).
pub fn m_i(k: usize) -> Ensemble {
    assert!(k >= 1);
    let n = k + 2;
    let mut cols: Vec<Vec<Atom>> = (0..=k as Atom).map(|i| vec![i, i + 1]).collect();
    cols.push(vec![0, (k + 1) as Atom]);
    Ensemble::from_sorted_columns(n, cols).expect("m_i is valid")
}

/// `M_II(k)`: `k + 3` atoms; the path pairs `{i, i+1}` (`i = 0..k`) plus two
/// size-`(k+2)` columns `{0..k} ∪ {k+2}` and `{1..k+1} ∪ {k+2}` that force
/// two interleaved blocks no linear layout satisfies.
pub fn m_ii(k: usize) -> Ensemble {
    assert!(k >= 1);
    let n = k + 3;
    let far = (k + 2) as Atom;
    let mut cols: Vec<Vec<Atom>> = (0..=k as Atom).map(|i| vec![i, i + 1]).collect();
    let mut lo: Vec<Atom> = (0..=k as Atom).collect();
    lo.push(far);
    let mut hi: Vec<Atom> = (1..=(k + 1) as Atom).collect();
    hi.push(far);
    cols.push(lo);
    cols.push(hi);
    Ensemble::from_sorted_columns(n, cols).expect("m_ii is valid")
}

/// `M_III(k)`: `k + 3` atoms; the path pairs `{i, i+1}` (`i = 0..k`) force a
/// linear arrangement of `0..k+1`, and the column `{1..k} ∪ {k+2}` demands
/// the outside atom `k+2` sit against the path's interior — impossible.
pub fn m_iii(k: usize) -> Ensemble {
    assert!(k >= 1);
    let n = k + 3;
    let far = (k + 2) as Atom;
    let mut cols: Vec<Vec<Atom>> = (0..=k as Atom).map(|i| vec![i, i + 1]).collect();
    let mut mid: Vec<Atom> = (1..=k as Atom).collect();
    mid.push(far);
    cols.push(mid);
    Ensemble::from_sorted_columns(n, cols).expect("m_iii is valid")
}

/// `M_IV`: 6 atoms; three disjoint pairs plus the transversal `{1, 3, 5}`.
/// The transversal block has two boundary slots but all three pairs demand
/// one.
pub fn m_iv() -> Ensemble {
    Ensemble::from_sorted_columns(6, vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![1, 3, 5]])
        .expect("m_iv is valid")
}

/// `M_V`: 5 atoms; `{0,1}`, `{0,1,2,3}`, `{2,3}`, `{1,2,4}`.
pub fn m_v() -> Ensemble {
    Ensemble::from_sorted_columns(5, vec![vec![0, 1], vec![0, 1, 2, 3], vec![2, 3], vec![1, 2, 4]])
        .expect("m_v is valid")
}

/// A sampler of small certified obstructions (all brute-force verified in
/// tests), for rejection-path test suites.
pub fn small_obstructions() -> Vec<(String, Ensemble)> {
    let mut out = Vec::new();
    for k in 1..=4 {
        out.push((format!("M_I({k})"), m_i(k)));
        out.push((format!("M_II({k})"), m_ii(k)));
        out.push((format!("M_III({k})"), m_iii(k)));
    }
    out.push(("M_IV".to_string(), m_iv()));
    out.push(("M_V".to_string(), m_v()));
    out
}

/// Embeds an obstruction into a larger, otherwise-satisfiable instance:
/// the obstruction's atoms are mapped to `offset..offset+n`, and
/// `extra_intervals` planted intervals over the full atom range are
/// appended. The result is still non-C1P (a submatrix obstruction survives
/// supersets) — used for failure-injection tests at realistic sizes.
pub fn embed_obstruction(
    obstruction: &Ensemble,
    total_atoms: usize,
    offset: usize,
    extra_intervals: &[(usize, usize)],
) -> Ensemble {
    assert!(offset + obstruction.n_atoms() <= total_atoms);
    let mut cols: Vec<Vec<Atom>> = obstruction
        .columns()
        .iter()
        .map(|c| c.iter().map(|&a| a + offset as Atom).collect())
        .collect();
    for &(lo, len) in extra_intervals {
        let lo = lo.min(total_atoms - 1);
        let hi = (lo + len.max(1)).min(total_atoms);
        cols.push((lo as Atom..hi as Atom).collect());
    }
    Ensemble::from_sorted_columns(total_atoms, cols).expect("embedding is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{brute_force_linear, verify_linear};

    #[test]
    fn all_families_are_non_c1p() {
        for (name, ens) in small_obstructions() {
            if ens.n_atoms() <= 8 {
                assert!(
                    brute_force_linear(&ens).is_none(),
                    "{name} must not be C1P:\n{}",
                    ens.to_matrix()
                );
            }
        }
    }

    #[test]
    fn families_are_minimal_under_column_deletion() {
        // Deleting any single column of a minimal obstruction yields C1P.
        for (name, ens) in small_obstructions() {
            if ens.n_atoms() > 8 {
                continue;
            }
            for drop in 0..ens.n_columns() {
                let cols: Vec<Vec<Atom>> = ens
                    .columns()
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop)
                    .map(|(_, c)| c.clone())
                    .collect();
                let sub = Ensemble::from_sorted_columns(ens.n_atoms(), cols).unwrap();
                assert!(
                    brute_force_linear(&sub).is_some(),
                    "{name} minus column {drop} should be C1P"
                );
            }
        }
    }

    #[test]
    fn shapes_match_tucker() {
        assert_eq!((m_i(1).n_atoms(), m_i(1).n_columns()), (3, 3));
        assert_eq!((m_i(3).n_atoms(), m_i(3).n_columns()), (5, 5));
        assert_eq!((m_ii(1).n_atoms(), m_ii(1).n_columns()), (4, 4));
        assert_eq!((m_iii(1).n_atoms(), m_iii(1).n_columns()), (4, 3));
        assert_eq!((m_iv().n_atoms(), m_iv().n_columns()), (6, 4));
        assert_eq!((m_v().n_atoms(), m_v().n_columns()), (5, 4));
    }

    #[test]
    fn classify_inverts_every_generator() {
        let mut fams: Vec<TuckerFamily> = vec![TuckerFamily::MIV, TuckerFamily::MV];
        for k in 1..=8 {
            fams.push(TuckerFamily::MI(k));
            fams.push(TuckerFamily::MII(k));
            fams.push(TuckerFamily::MIII(k));
        }
        for fam in fams {
            assert_eq!(classify(&fam.generate()), Some(fam), "{fam}");
        }
    }

    #[test]
    fn classify_is_relabeling_invariant() {
        // deterministic scrambles: rotations and a reversal per family
        for (name, ens) in small_obstructions() {
            let n = ens.n_atoms();
            let fam = classify(&ens).unwrap_or_else(|| panic!("{name} must classify"));
            for rot in 0..n {
                let perm: Vec<Atom> = (0..n).map(|a| ((a + rot) % n) as Atom).collect();
                assert_eq!(classify(&ens.permute_atoms(&perm)), Some(fam), "{name} rot {rot}");
            }
            let rev: Vec<Atom> = (0..n).map(|a| (n - 1 - a) as Atom).collect();
            assert_eq!(classify(&ens.permute_atoms(&rev)), Some(fam), "{name} reversed");
        }
    }

    #[test]
    fn classify_rejects_non_obstructions() {
        // C1P instances of matching shapes must not classify
        let path = Ensemble::from_sorted_columns(
            4,
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 1, 2]],
        )
        .unwrap();
        assert_eq!(classify(&path), None, "C1P shape look-alike of M_II(1)");
        // M_I(2) minus its closing column is a path: C1P, no family
        let open =
            Ensemble::from_sorted_columns(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        assert_eq!(classify(&open), None);
        // M_IV with the transversal hitting one pair twice
        let bad_t = Ensemble::from_sorted_columns(
            6,
            vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![0, 1, 5]],
        )
        .unwrap();
        assert_eq!(classify(&bad_t), None);
        // two disjoint triangles: 2-regular pair graph but not one cycle
        let two_tri = Ensemble::from_sorted_columns(
            6,
            vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5]],
        )
        .unwrap();
        assert_eq!(classify(&two_tri), None);
    }

    #[test]
    fn embedding_preserves_rejection_and_extras_are_intervals() {
        let emb = embed_obstruction(&m_i(1), 8, 2, &[(0, 3), (5, 3)]);
        assert_eq!(emb.n_atoms(), 8);
        if emb.n_atoms() <= 8 {
            assert!(brute_force_linear(&emb).is_none());
        }
        // sanity: without the obstruction columns, the extras alone are C1P
        let extras =
            Ensemble::from_sorted_columns(8, emb.columns()[m_i(1).n_columns()..].to_vec()).unwrap();
        verify_linear(&extras, &(0..8).collect::<Vec<_>>()).unwrap();
    }
}

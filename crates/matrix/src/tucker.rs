//! Tucker's minimal non-C1P obstruction families (Tucker [19], cited by the
//! paper for the Case-2 transform; Booth & Lueker [6] reproduce the
//! families).
//!
//! A (0,1)-matrix has C1P iff it contains none of `M_I(k), M_II(k),
//! M_III(k)` (`k ≥ 1`), `M_IV`, `M_V` as a submatrix. We state the families
//! in this workspace's ensemble convention (atoms = Tucker's columns — the
//! dimension being permuted; ensemble columns = Tucker's rows), so each
//! generator below is a *certified non-C1P instance* used as the rejection
//! workload for every solver. Each family is brute-force verified non-C1P
//! in the tests.

use crate::ensemble::{Atom, Ensemble};

/// `M_I(k)`: the chordless-cycle obstruction on `k + 2` atoms: the paths
/// `{i, i+1}` plus the closing pair `{0, k+1}`. The smallest non-C1P matrix
/// is `m_i(1)` (3 atoms × 3 columns).
pub fn m_i(k: usize) -> Ensemble {
    assert!(k >= 1);
    let n = k + 2;
    let mut cols: Vec<Vec<Atom>> = (0..=k as Atom).map(|i| vec![i, i + 1]).collect();
    cols.push(vec![0, (k + 1) as Atom]);
    Ensemble::from_sorted_columns(n, cols).expect("m_i is valid")
}

/// `M_II(k)`: `k + 3` atoms; the path pairs `{i, i+1}` (`i = 0..k`) plus two
/// size-`(k+2)` columns `{0..k} ∪ {k+2}` and `{1..k+1} ∪ {k+2}` that force
/// two interleaved blocks no linear layout satisfies.
pub fn m_ii(k: usize) -> Ensemble {
    assert!(k >= 1);
    let n = k + 3;
    let far = (k + 2) as Atom;
    let mut cols: Vec<Vec<Atom>> = (0..=k as Atom).map(|i| vec![i, i + 1]).collect();
    let mut lo: Vec<Atom> = (0..=k as Atom).collect();
    lo.push(far);
    let mut hi: Vec<Atom> = (1..=(k + 1) as Atom).collect();
    hi.push(far);
    cols.push(lo);
    cols.push(hi);
    Ensemble::from_sorted_columns(n, cols).expect("m_ii is valid")
}

/// `M_III(k)`: `k + 3` atoms; the path pairs `{i, i+1}` (`i = 0..k`) force a
/// linear arrangement of `0..k+1`, and the column `{1..k} ∪ {k+2}` demands
/// the outside atom `k+2` sit against the path's interior — impossible.
pub fn m_iii(k: usize) -> Ensemble {
    assert!(k >= 1);
    let n = k + 3;
    let far = (k + 2) as Atom;
    let mut cols: Vec<Vec<Atom>> = (0..=k as Atom).map(|i| vec![i, i + 1]).collect();
    let mut mid: Vec<Atom> = (1..=k as Atom).collect();
    mid.push(far);
    cols.push(mid);
    Ensemble::from_sorted_columns(n, cols).expect("m_iii is valid")
}

/// `M_IV`: 6 atoms; three disjoint pairs plus the transversal `{1, 3, 5}`.
/// The transversal block has two boundary slots but all three pairs demand
/// one.
pub fn m_iv() -> Ensemble {
    Ensemble::from_sorted_columns(6, vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![1, 3, 5]])
        .expect("m_iv is valid")
}

/// `M_V`: 5 atoms; `{0,1}`, `{0,1,2,3}`, `{2,3}`, `{1,2,4}`.
pub fn m_v() -> Ensemble {
    Ensemble::from_sorted_columns(5, vec![vec![0, 1], vec![0, 1, 2, 3], vec![2, 3], vec![1, 2, 4]])
        .expect("m_v is valid")
}

/// A sampler of small certified obstructions (all brute-force verified in
/// tests), for rejection-path test suites.
pub fn small_obstructions() -> Vec<(String, Ensemble)> {
    let mut out = Vec::new();
    for k in 1..=4 {
        out.push((format!("M_I({k})"), m_i(k)));
        out.push((format!("M_II({k})"), m_ii(k)));
        out.push((format!("M_III({k})"), m_iii(k)));
    }
    out.push(("M_IV".to_string(), m_iv()));
    out.push(("M_V".to_string(), m_v()));
    out
}

/// Embeds an obstruction into a larger, otherwise-satisfiable instance:
/// the obstruction's atoms are mapped to `offset..offset+n`, and
/// `extra_intervals` planted intervals over the full atom range are
/// appended. The result is still non-C1P (a submatrix obstruction survives
/// supersets) — used for failure-injection tests at realistic sizes.
pub fn embed_obstruction(
    obstruction: &Ensemble,
    total_atoms: usize,
    offset: usize,
    extra_intervals: &[(usize, usize)],
) -> Ensemble {
    assert!(offset + obstruction.n_atoms() <= total_atoms);
    let mut cols: Vec<Vec<Atom>> = obstruction
        .columns()
        .iter()
        .map(|c| c.iter().map(|&a| a + offset as Atom).collect())
        .collect();
    for &(lo, len) in extra_intervals {
        let lo = lo.min(total_atoms - 1);
        let hi = (lo + len.max(1)).min(total_atoms);
        cols.push((lo as Atom..hi as Atom).collect());
    }
    Ensemble::from_sorted_columns(total_atoms, cols).expect("embedding is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{brute_force_linear, verify_linear};

    #[test]
    fn all_families_are_non_c1p() {
        for (name, ens) in small_obstructions() {
            if ens.n_atoms() <= 8 {
                assert!(
                    brute_force_linear(&ens).is_none(),
                    "{name} must not be C1P:\n{}",
                    ens.to_matrix()
                );
            }
        }
    }

    #[test]
    fn families_are_minimal_under_column_deletion() {
        // Deleting any single column of a minimal obstruction yields C1P.
        for (name, ens) in small_obstructions() {
            if ens.n_atoms() > 8 {
                continue;
            }
            for drop in 0..ens.n_columns() {
                let cols: Vec<Vec<Atom>> = ens
                    .columns()
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop)
                    .map(|(_, c)| c.clone())
                    .collect();
                let sub = Ensemble::from_sorted_columns(ens.n_atoms(), cols).unwrap();
                assert!(
                    brute_force_linear(&sub).is_some(),
                    "{name} minus column {drop} should be C1P"
                );
            }
        }
    }

    #[test]
    fn shapes_match_tucker() {
        assert_eq!((m_i(1).n_atoms(), m_i(1).n_columns()), (3, 3));
        assert_eq!((m_i(3).n_atoms(), m_i(3).n_columns()), (5, 5));
        assert_eq!((m_ii(1).n_atoms(), m_ii(1).n_columns()), (4, 4));
        assert_eq!((m_iii(1).n_atoms(), m_iii(1).n_columns()), (4, 3));
        assert_eq!((m_iv().n_atoms(), m_iv().n_columns()), (6, 4));
        assert_eq!((m_v().n_atoms(), m_v().n_columns()), (5, 4));
    }

    #[test]
    fn embedding_preserves_rejection_and_extras_are_intervals() {
        let emb = embed_obstruction(&m_i(1), 8, 2, &[(0, 3), (5, 3)]);
        assert_eq!(emb.n_atoms(), 8);
        if emb.n_atoms() <= 8 {
            assert!(brute_force_linear(&emb).is_none());
        }
        // sanity: without the obstruction columns, the extras alone are C1P
        let extras =
            Ensemble::from_sorted_columns(8, emb.columns()[m_i(1).n_columns()..].to_vec()).unwrap();
        verify_linear(&extras, &(0..8).collect::<Vec<_>>()).unwrap();
    }
}

//! The paper's motivating workloads.
//!
//! **Physical mapping (Section 1.1).** A clone library is a set of
//! overlapping DNA fragments; each clone is fingerprinted by the set of STS
//! probes it contains. The data is a (0,1)-matrix with `a_{ij} = 1` iff
//! clone `i` contains STS `j`; an STS ordering is consistent iff every
//! clone's fingerprint is consecutive — i.e. the matrix (atoms = STSs,
//! columns = clones) has C1P. The paper cites real experiments with
//! 18 000–25 000 clones and 9 000–15 000 STSs [1, 15]; no data is published
//! with the paper, so [`CloneLibrary`] synthesizes instances of exactly that
//! shape (substitution documented in DESIGN.md §4).
//!
//! **Consecutive retrieval (Section 1.4, Ghosh \[11\]).** Records stored on a
//! linear medium; each query must fetch a consecutive run. Identical
//! combinatorics: atoms = records, columns = queries.

use crate::ensemble::{Atom, Ensemble};
use crate::generate::random_permutation;
use rand::{Rng, RngExt};

/// Parameters of a synthetic clone-library fingerprinting experiment.
#[derive(Debug, Clone, Copy)]
pub struct CloneLibrary {
    /// Number of STS probes (the atoms; paper cites 9 000–15 000).
    pub n_sts: usize,
    /// Number of clones (the columns; paper cites 18 000–25 000).
    pub n_clones: usize,
    /// Mean number of STSs per clone (clone length in probe units).
    pub mean_clone_span: usize,
    /// Scramble the STS labels (true = hide the genome order, the realistic
    /// setting; false = identity labels for debugging).
    pub scramble: bool,
}

impl CloneLibrary {
    /// The shape the paper cites from Alizadeh et al. / Lander: ~18k clones,
    /// ~9k STSs.
    pub fn genome_scale() -> Self {
        CloneLibrary { n_sts: 9_000, n_clones: 18_000, mean_clone_span: 12, scramble: true }
    }

    /// A reduced shape with the same clone/STS ratio and coverage, for quick
    /// tests.
    pub fn bench_scale(n_sts: usize) -> Self {
        CloneLibrary { n_sts, n_clones: 2 * n_sts, mean_clone_span: 12, scramble: true }
    }

    /// Draws a clean (error-free) fingerprint matrix. Each clone covers a
    /// contiguous run of STSs along the hidden genome; run lengths are
    /// uniform in `[1, 2·mean_clone_span]`.
    ///
    /// Returns `(ensemble, hidden_sts_order)` — the hidden order witnesses
    /// C1P.
    pub fn sample(&self, rng: &mut impl Rng) -> (Ensemble, Vec<Atom>) {
        assert!(self.n_sts > 0);
        let hidden = if self.scramble {
            random_permutation(self.n_sts, rng)
        } else {
            (0..self.n_sts as Atom).collect()
        };
        let max_span = (2 * self.mean_clone_span).clamp(1, self.n_sts);
        let mut cols = Vec::with_capacity(self.n_clones);
        for _ in 0..self.n_clones {
            let len = rng.random_range(1..=max_span);
            let start = rng.random_range(0..=self.n_sts - len);
            let mut col: Vec<Atom> = hidden[start..start + len].to_vec();
            col.sort_unstable();
            cols.push(col);
        }
        let ens = Ensemble::from_sorted_columns(self.n_sts, cols).expect("clones are valid");
        (ens, hidden)
    }
}

/// Parameters of a consecutive-retrieval file-organization instance
/// (Ghosh \[11\]): `n_records` records, `n_queries` queries, each query
/// touching a run of records in the (hidden) optimal storage order.
#[derive(Debug, Clone, Copy)]
pub struct RetrievalWorkload {
    /// Number of records (atoms).
    pub n_records: usize,
    /// Number of query classes (columns).
    pub n_queries: usize,
    /// Maximum records per query.
    pub max_query_size: usize,
}

impl RetrievalWorkload {
    /// Draws a satisfiable instance plus its witness storage order.
    pub fn sample(&self, rng: &mut impl Rng) -> (Ensemble, Vec<Atom>) {
        assert!(self.n_records > 0);
        let hidden = random_permutation(self.n_records, rng);
        let maxq = self.max_query_size.clamp(1, self.n_records);
        let mut cols = Vec::with_capacity(self.n_queries);
        for _ in 0..self.n_queries {
            let len = rng.random_range(1..=maxq);
            let start = rng.random_range(0..=self.n_records - len);
            let mut col: Vec<Atom> = hidden[start..start + len].to_vec();
            col.sort_unstable();
            cols.push(col);
        }
        let ens = Ensemble::from_sorted_columns(self.n_records, cols).expect("queries are valid");
        (ens, hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_linear;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn clone_library_is_c1p() {
        let mut rng = SmallRng::seed_from_u64(42);
        let lib = CloneLibrary { n_sts: 200, n_clones: 500, mean_clone_span: 8, scramble: true };
        let (ens, hidden) = lib.sample(&mut rng);
        assert_eq!(ens.n_atoms(), 200);
        assert_eq!(ens.n_columns(), 500);
        verify_linear(&ens, &hidden).expect("hidden genome order realizes the fingerprints");
    }

    #[test]
    fn genome_scale_matches_paper_shape() {
        let g = CloneLibrary::genome_scale();
        assert!((9_000..=15_000).contains(&g.n_sts));
        assert!((18_000..=25_000).contains(&g.n_clones));
    }

    #[test]
    fn unscrambled_library_uses_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let lib = CloneLibrary { n_sts: 50, n_clones: 10, mean_clone_span: 5, scramble: false };
        let (ens, hidden) = lib.sample(&mut rng);
        assert_eq!(hidden, (0..50).collect::<Vec<_>>());
        // every clone is an interval of 0..50 directly
        for col in ens.columns() {
            assert_eq!(col.last().unwrap() - col.first().unwrap() + 1, col.len() as u32);
        }
    }

    #[test]
    fn retrieval_workload_is_c1p() {
        let mut rng = SmallRng::seed_from_u64(9);
        let w = RetrievalWorkload { n_records: 120, n_queries: 300, max_query_size: 10 };
        let (ens, hidden) = w.sample(&mut rng);
        verify_linear(&ens, &hidden).expect("hidden storage order serves all queries");
    }
}

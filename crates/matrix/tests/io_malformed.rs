//! Hostile-input hardening for `c1p_matrix::io` (text and wire): seeded
//! malformed inputs must produce structured [`EnsembleError`]s with correct
//! positions — never a panic, never an unbounded allocation.

use c1p_matrix::io::{
    decode_ensemble, decode_verdict, encode_ensemble, encode_verdict, parse_ensemble, parse_matrix,
    WireVerdict, MAX_LINE_BYTES,
};
use c1p_matrix::tucker::TuckerFamily;
use c1p_matrix::{Ensemble, EnsembleError};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A well-formed seeded matrix text to corrupt.
fn clean_text(rng: &mut SmallRng) -> String {
    let rows = 2 + rng.random_range(0..6usize);
    let cols = 1 + rng.random_range(0..8usize);
    let mut s = String::new();
    for _ in 0..rows {
        for _ in 0..cols {
            s.push(if rng.random_range(0..2u32) == 0 { '0' } else { '1' });
        }
        s.push('\n');
    }
    s
}

#[test]
fn ragged_rows_report_the_offending_line() {
    let mut rng = SmallRng::seed_from_u64(0xA11);
    for _ in 0..50 {
        let mut text = clean_text(&mut rng);
        // append a row one entry short (always ragged since cols >= 1... a
        // 1-column matrix gets a 2-entry row instead)
        let cols = text.lines().next().unwrap().len();
        let bad_row = if cols > 1 { "1".repeat(cols - 1) } else { "11".into() };
        let lines_before = text.lines().count();
        text.push_str(&bad_row);
        text.push('\n');
        match parse_matrix(&text) {
            Err(EnsembleError::Parse { line, message }) => {
                assert_eq!(line, lines_before + 1, "error names the ragged line");
                assert!(message.contains("expected"), "{message}");
            }
            other => panic!("ragged input must fail with Parse, got {other:?}"),
        }
    }
}

#[test]
fn embedded_nul_and_garbage_report_line_and_char() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for garbage in ['\0', 'x', '2', 'é', '\u{200b}'] {
        for _ in 0..20 {
            let text = clean_text(&mut rng);
            let line_no = 1 + rng.random_range(0..text.lines().count());
            let mut lines: Vec<String> = text.lines().map(String::from).collect();
            let at = rng.random_range(0..=lines[line_no - 1].len());
            lines[line_no - 1].insert(at, garbage);
            let corrupted = lines.join("\n");
            match parse_matrix(&corrupted) {
                Err(EnsembleError::Parse { line, message }) => {
                    assert_eq!(line, line_no, "error names the corrupted line ({garbage:?})");
                    assert!(message.contains("unexpected character"), "{message}");
                }
                other => panic!("garbage {garbage:?} must fail with Parse, got {other:?}"),
            }
        }
    }
}

#[test]
fn zero_entry_lines_are_structured_errors() {
    for (text, line) in [
        (",\n11\n", 1),
        ("11\n \t, \n", 2),
        ("10\n01\n,,,\n", 3),
        // a separator-only line is an error even as the sole content
        (" , ", 1),
    ] {
        match parse_matrix(text) {
            Err(EnsembleError::Parse { line: at, .. }) => assert_eq!(at, line, "{text:?}"),
            other => panic!("{text:?} must fail with Parse, got {other:?}"),
        }
    }
}

#[test]
fn hundred_megabyte_single_line_is_guarded() {
    // One 100 MB line: the guard must bail on length alone, returning a
    // structured error with the right line number instead of scanning.
    let t0 = std::time::Instant::now();
    let big = "1".repeat(100 << 20);
    match parse_matrix(&big) {
        Err(EnsembleError::Parse { line: 1, message }) => {
            assert!(message.contains("limit"), "{message}")
        }
        other => panic!("oversized line must fail with Parse, got {other:?}"),
    }
    // second line oversized: line number still correct
    let two = format!("11\n{}", "1".repeat(MAX_LINE_BYTES + 1));
    match parse_matrix(&two) {
        Err(EnsembleError::Parse { line: 2, .. }) => {}
        other => panic!("oversized second line must fail at line 2, got {other:?}"),
    }
    assert!(t0.elapsed().as_secs() < 30, "guard must not degrade into a full scan");
}

#[test]
fn seeded_random_corruptions_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for round in 0..300 {
        let mut text = clean_text(&mut rng).into_bytes();
        // splice 1-4 random bytes (possibly multi-byte-UTF8-breaking; those
        // inputs are pre-filtered since parse takes &str)
        for _ in 0..1 + rng.random_range(0..4usize) {
            let at = rng.random_range(0..=text.len());
            text.insert(at, rng.random_range(0..=255u32) as u8);
        }
        if let Ok(s) = String::from_utf8(text) {
            let _ = parse_matrix(&s); // must not panic; error shape free
        }
        let _ = round;
    }
}

#[test]
fn wire_truncations_and_mutations_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xD1CE);
    let ens =
        Ensemble::from_columns(40, vec![vec![0, 3, 9], vec![5, 6], vec![1, 2, 3, 20, 39]]).unwrap();
    let verdict = WireVerdict::Reject {
        family: TuckerFamily::MII(3),
        atom_rows: vec![0, 1, 5, 9, 12, 13],
        column_ids: vec![2, 4, 5, 6, 7, 8],
    };
    let payloads = [encode_ensemble(&ens), encode_verdict(&verdict)];
    for payload in &payloads {
        // every prefix
        for cut in 0..payload.len() {
            assert!(decode_ensemble(&payload[..cut]).is_err());
            assert!(decode_verdict(&payload[..cut]).is_err());
        }
        // seeded single-byte mutations: decode must return, not panic;
        // if it returns Ok the payload was still a valid encoding (fine)
        for _ in 0..500 {
            let mut m = payload.clone();
            let at = rng.random_range(0..m.len());
            m[at] ^= 1 << rng.random_range(0..8u32);
            let _ = decode_ensemble(&m);
            let _ = decode_verdict(&m);
        }
    }
    // pure noise
    for _ in 0..500 {
        let len = rng.random_range(0..64usize);
        let noise: Vec<u8> = (0..len).map(|_| rng.random_range(0..=255u32) as u8).collect();
        let _ = decode_ensemble(&noise);
        let _ = decode_verdict(&noise);
    }
}

#[test]
fn session_frames_survive_truncation_and_mutation_fuzz() {
    use c1p_engine::proto::{decode_msg, encode_msg, Msg, ProtoError};

    let mut rng = SmallRng::seed_from_u64(0x005E_5510);
    let ens =
        Ensemble::from_columns(40, vec![vec![0, 3, 9], vec![5, 6], vec![1, 2, 3, 20, 39]]).unwrap();
    let frames = [
        Msg::OpenSession { id: 3, n_atoms: 40 },
        Msg::PushAtoms { id: 4, session: 7, delta: ens.clone() },
        Msg::SealSession { id: 5, session: 7 },
        Msg::SessionVerdict {
            id: 6,
            session: 7,
            verdict: WireVerdict::Accept { order: (0..40).collect() },
        },
        Msg::SessionVerdict {
            id: 8,
            session: 9,
            verdict: WireVerdict::Reject {
                family: TuckerFamily::MI(2),
                atom_rows: vec![0, 1, 2, 3],
                column_ids: vec![1, 4, 6, 7],
            },
        },
    ];
    for msg in &frames {
        let payload = encode_msg(msg);
        assert_eq!(&decode_msg(&payload).unwrap(), msg, "round trip");
        // every strict prefix must error (never panic, never succeed —
        // all session frames carry a size-checked fixed or embedded tail)
        for cut in 0..payload.len() {
            assert!(decode_msg(&payload[..cut]).is_err(), "{msg:?} cut at {cut}");
        }
        // seeded single-byte mutations: decode must return, not panic;
        // Ok means the mutation still spelled a valid frame (fine)
        for _ in 0..500 {
            let mut m = payload.clone();
            let at = rng.random_range(0..m.len());
            m[at] ^= 1 << rng.random_range(0..8u32);
            let _ = decode_msg(&m);
        }
        // trailing garbage after a complete frame must be rejected
        let mut m = payload.clone();
        m.push(0);
        assert!(decode_msg(&m).is_err(), "{msg:?} with a trailing byte");
    }
    // a truncated embedded delta surfaces as a structured Wire error
    // carrying the byte offset, exactly like bare decode_ensemble
    let payload = encode_msg(&Msg::PushAtoms { id: 1, session: 2, delta: ens });
    let cut = &payload[..payload.len() - 1];
    assert!(
        matches!(decode_msg(cut), Err(ProtoError::Wire(EnsembleError::Wire { .. }))),
        "embedded wire errors keep their offset-carrying shape"
    );
    // pure noise behind the session tags
    for tag in [0x06u8, 0x07, 0x08, 0x09] {
        for _ in 0..300 {
            let len = rng.random_range(0..48usize);
            let mut noise: Vec<u8> = (0..len).map(|_| rng.random_range(0..=255u32) as u8).collect();
            noise.insert(0, tag);
            let _ = decode_msg(&noise);
        }
    }
}

#[test]
fn record_framing_fuzz_classifies_tears_and_damage() {
    use c1p_matrix::io::{append_record, split_record, RecordError};

    let mut rng = SmallRng::seed_from_u64(0x57EA_D7A1);
    for _ in 0..60 {
        // a little log of 1-5 records with seeded payloads and aux words
        let n = 1 + rng.random_range(0..5usize);
        let mut log = Vec::new();
        let mut records = Vec::new();
        for _ in 0..n {
            let len = rng.random_range(0..40usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.random_range(0..=255u32) as u8).collect();
            let aux = (rng.random_range(0..=u32::MAX) as u64) << 17;
            let offset = log.len();
            append_record(&mut log, &payload, aux);
            records.push((offset, payload, aux));
        }

        // the clean log round-trips exactly
        let mut at = 0;
        for (offset, payload, aux) in &records {
            assert_eq!(at, *offset);
            let rec = split_record(&log, at).expect("clean record");
            assert_eq!(rec.payload, &payload[..]);
            assert_eq!(rec.aux, *aux);
            at += rec.consumed;
        }
        assert_eq!(at, log.len());

        // every strict truncation of the final record is Torn — the
        // records before the tear still parse exactly
        let (last_off, ..) = records[records.len() - 1];
        for cut in last_off..log.len() {
            match split_record(&log[..cut], last_off) {
                Err(RecordError::Torn) => {}
                other => panic!("cut at {cut} must be Torn, got {other:?}"),
            }
        }

        // a bit flip anywhere in a non-final record is Corrupt at that
        // record's offset (never Torn, never a silent success) when the
        // flip lands in the framing/checksum coverage
        if records.len() >= 2 {
            let (off, ..) = records[rng.random_range(0..records.len() - 1)];
            let end = off + split_record(&log, off).unwrap().consumed;
            let mut m = log.clone();
            let at = off + rng.random_range(0..(end - off));
            m[at] ^= 1 << rng.random_range(0..8u32);
            match split_record(&m, off) {
                Err(RecordError::Corrupt { offset }) => assert_eq!(offset, off),
                // a flip in the length prefix can also read past the tail
                Err(RecordError::Torn) => assert!(at < off + 4, "only a length flip may tear"),
                Ok(_) => panic!("bit flip at {at} parsed as a valid record"),
            }
        }

        // a flip in the *final* record is reported as Torn when the
        // buffer ends with it (truncation-safe), Corrupt only if the
        // length flip left trailing data
        let mut m = log.clone();
        let at = last_off + rng.random_range(0..(log.len() - last_off));
        m[at] ^= 1 << rng.random_range(0..8u32);
        match split_record(&m, last_off) {
            Err(RecordError::Torn) => {}
            Err(RecordError::Corrupt { offset }) => {
                assert_eq!(offset, last_off);
                assert!(at < last_off + 4, "only a length flip can leave trailing data");
            }
            Ok(_) => panic!("bit flip at {at} in the final record parsed as valid"),
        }
    }

    // hostile length prefixes never allocate or panic: a huge len is Torn
    for len in [u32::MAX, u32::MAX - 19, 1 << 30] {
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 64]);
        assert!(matches!(split_record(&buf, 0), Err(RecordError::Torn)));
    }
    // pure noise buffers return, never panic
    let mut rng = SmallRng::seed_from_u64(0x0FF);
    for _ in 0..500 {
        let len = rng.random_range(0..64usize);
        let noise: Vec<u8> = (0..len).map(|_| rng.random_range(0..=255u32) as u8).collect();
        let _ = split_record(&noise, 0);
    }
}

#[test]
fn wire_agrees_with_text_on_seeded_instances() {
    let mut rng = SmallRng::seed_from_u64(0x0123);
    for _ in 0..40 {
        let text = clean_text(&mut rng);
        let ens = parse_ensemble(&text).unwrap();
        let bytes = encode_ensemble(&ens);
        assert_eq!(decode_ensemble(&bytes).unwrap(), ens, "wire round trip of {text:?}");
        assert!(bytes.len() <= 6 + 20 + 2 * ens.n_columns() + 5 * ens.p().max(1), "compactness");
    }
}

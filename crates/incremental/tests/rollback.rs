//! The rollback property: a rejected push leaves the session byte-exactly
//! at its last accepted state — stream hash, witness order and ensemble —
//! and a fresh session replaying the accepted stream verbatim reproduces
//! that state. Verified over seeded reject streams with the Booth–Lueker
//! PQ-tree as an independent per-prefix decision oracle.

use c1p_incremental::IncrementalSolver;
use c1p_matrix::generate::{append_stream_reject, AppendStream};
use c1p_matrix::{verify_linear, Atom};

/// Replays `pushes` into a fresh solver, asserting every push accepts.
fn replay(n: usize, pushes: &[Vec<Vec<Atom>>]) -> IncrementalSolver {
    let mut inc = IncrementalSolver::new(n);
    for p in pushes {
        inc.push_columns(p.clone()).unwrap().unwrap_or_else(|_| {
            panic!("replayed accepted stream must re-accept");
        });
    }
    inc
}

#[test]
fn rejected_pushes_roll_back_and_replays_reproduce_the_hash() {
    for seed in 0..12u64 {
        let (stream, at, _): (AppendStream, usize, _) = append_stream_reject(64, 4, 6, seed);
        let n = stream.n_atoms;
        let mut inc = IncrementalSolver::new(n);
        let mut accepted: Vec<Vec<Vec<Atom>>> = Vec::new();
        let mut flat: Vec<Vec<Atom>> = Vec::new();
        for (k, push) in stream.pushes.iter().enumerate() {
            let pre_hash = inc.stream_hash();
            let pre_order = inc.order().to_vec();
            let pre_cols = inc.ensemble().n_columns();
            let verdict = inc.push_columns(push.clone()).unwrap();
            // independent decision oracle: incremental PQ-tree reduction
            // over the concatenation this verdict speaks about
            let mut concat = flat.clone();
            concat.extend(push.iter().cloned());
            let pq = c1p_pqtree::solve(n, &concat);
            match verdict {
                Ok(order) => {
                    assert_eq!(k != at, pq.is_some(), "seed {seed} push {k}: oracle disagrees");
                    assert_ne!(k, at, "seed {seed}: planted reject must not accept");
                    verify_linear(inc.ensemble(), &order).unwrap();
                    assert_ne!(inc.stream_hash(), pre_hash, "accepts advance the hash");
                    accepted.push(push.clone());
                    flat = concat;
                }
                Err(cert) => {
                    assert_eq!(k, at, "seed {seed}: reject only at the planted push");
                    assert!(pq.is_none(), "seed {seed}: oracle must also reject");
                    // rollback is byte-exact
                    assert_eq!(inc.stream_hash(), pre_hash, "hash untouched");
                    assert_eq!(inc.order(), &pre_order[..], "order untouched");
                    assert_eq!(inc.ensemble().n_columns(), pre_cols, "columns truncated");
                    assert!(!cert.witness.atom_rows.is_empty());
                }
            }
        }
        assert_eq!(inc.stats().rejected_pushes, 1, "seed {seed}");
        // a fresh session replaying the accepted stream verbatim lands on
        // the same hash, order and ensemble
        let twin = replay(n, &accepted);
        assert_eq!(twin.stream_hash(), inc.stream_hash(), "seed {seed}: replay hash");
        assert_eq!(twin.order(), inc.order(), "seed {seed}: replay order");
        assert_eq!(twin.ensemble(), inc.ensemble(), "seed {seed}: replay ensemble");
    }
}

#[test]
fn hash_is_order_sensitive_and_push_granular() {
    let stream = c1p_matrix::generate::append_stream(64, 4, 4, 1);
    let n = stream.n_atoms;
    // the same columns split into different push boundaries hash equal
    // (the hash covers the accepted column stream, not the batching)...
    let mut one = IncrementalSolver::new(n);
    let all: Vec<Vec<Atom>> = stream.pushes[..2].iter().flat_map(|p| p.iter().cloned()).collect();
    one.push_columns(all.clone()).unwrap().unwrap();
    let mut two = IncrementalSolver::new(n);
    two.push_columns(stream.pushes[0].clone()).unwrap().unwrap();
    two.push_columns(stream.pushes[1].clone()).unwrap().unwrap();
    assert_eq!(one.stream_hash(), two.stream_hash());
    assert_eq!(one.order(), two.order());
    // ...but reordering columns within the stream changes it
    let mut rev = IncrementalSolver::new(n);
    let mut reversed = all;
    reversed.reverse();
    rev.push_columns(reversed).unwrap().unwrap();
    assert_ne!(rev.stream_hash(), one.stream_hash());
}

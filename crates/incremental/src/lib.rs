//! # c1p-incremental: streaming sessions with differential re-solve
//!
//! The divide-and-conquer stack answers one ensemble per call; real
//! session traffic *extends* an ensemble a few columns at a time and wants
//! a fresh verdict after every extension — the workload where incremental
//! reduction classically wins (Booth–Lueker's one-REDUCE-per-column loop),
//! and where Raffinot's cut-or-swap dynamic C1P analysis and the
//! Tucker-pattern extraction of Chauve–Stephen–Tamayo (PAPERS.md) show
//! that both acceptance and *certified* rejection can be maintained under
//! updates.
//!
//! [`IncrementalSolver`] holds a live decomposition of the accepted
//! ensemble into connected components of its bipartite atom–column graph —
//! exactly the seam `c1p_core::solve` already splits on — with one solved
//! order fragment cached per component. A [`push`](IncrementalSolver::push)
//! of new columns:
//!
//! 1. groups the components its ≥ 2-atom columns touch (a column glues the
//!    components of all its atoms together);
//! 2. re-solves only the merged groups, in ascending min-atom order,
//!    through [`c1p_core::solver::solve_component`] (or its parallel twin
//!    for large groups) — every untouched component keeps its cached
//!    fragment;
//! 3. on success, commits and returns the concatenated witness order; on
//!    failure, certifies the rejection with
//!    [`c1p_cert::certify_rejection`] against the tentatively extended
//!    ensemble and **rolls back** — the session stays at its last accepted
//!    state, byte for byte (columns truncated, components, order and
//!    stream hash untouched).
//!
//! Because step 2 runs the *same* component-solve code path the one-shot
//! driver runs over the same component content, every verdict — accept
//! order, rejection evidence, and Tucker witness — is bit-identical to
//! `c1p_cert::solve_certified` on the concatenated prefix, by construction
//! (and pinned by `crates/engine/tests/incremental_differential.rs` across
//! thread counts and cutoffs). The win is locality: a push that touches
//! `k` of `K` components costs the re-solve of those `k` plus an `O(n)`
//! splice, not a full re-solve (experiment E12 records the ratio).

use c1p_cert::{certify_rejection, CertifiedRejection};
use c1p_core::parallel::solve_component_par;
use c1p_core::solver::solve_component;
use c1p_core::Config;
use c1p_matrix::{Atom, Ensemble};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Outcome of one push: accepted with the new full witness order, or
/// rejected with a checkable certificate (the session rolled back).
pub type PushVerdict = Result<Vec<Atom>, CertifiedRejection>;

/// Why a durably-logged push failed to replay
/// ([`IncrementalSolver::replay_accepted`]). Either way the solver is
/// left exactly at its pre-call state — a failed replay leaves no trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The recorded post-push stream hash does not match what applying
    /// this delta would produce: the log disagrees with its own record
    /// of history, so nothing was applied.
    HashMismatch {
        /// The hash the log recorded.
        expected: u64,
        /// The hash replaying the delta would actually produce.
        actual: u64,
    },
    /// The delta was logged as accepted but the solver rejects it now —
    /// impossible for an intact log (verdicts are deterministic), so the
    /// log is damaged. The push was rolled back.
    Rejected,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::HashMismatch { expected, actual } => write!(
                f,
                "recorded stream hash {expected:#018x} but replay produces {actual:#018x}"
            ),
            ReplayError::Rejected => {
                write!(f, "a push logged as accepted is rejected on replay")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Counters over a session's lifetime ([`IncrementalSolver::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Pushes attempted (accepted + rejected).
    pub pushes: u64,
    /// Pushes rejected (and rolled back).
    pub rejected_pushes: u64,
    /// Component groups re-solved across all accepted/rejected pushes.
    pub components_resolved: u64,
    /// Components whose cached fragment was reused, summed per push.
    pub components_reused: u64,
    /// Total atoms in re-solved groups (the differential work actually
    /// paid, comparable against `pushes × n_atoms` for full re-solves).
    pub atoms_resolved: u64,
}

/// One live *materialized* component of the accepted ensemble — always
/// ≥ 2 atoms (a merged group is glued by a ≥ 2-atom column). Atoms never
/// touched by a column stay **implicit singletons**: `comp_key[a] == a`
/// with no map entry, fragment `[a]`, no columns — so a fresh session
/// costs two `O(n_atoms)` u32 vectors, not one heap component per atom.
struct Comp {
    /// Sorted global atom ids.
    atoms: Vec<Atom>,
    /// Ascending global ids of the component's columns with ≥ 2 atoms
    /// (smaller restrictions constrain nothing and are dropped by the
    /// solver anyway).
    col_ids: Vec<u32>,
    /// The solved fragment, in global atom ids.
    order: Vec<Atom>,
}

/// A live incremental C1P session. See the crate docs for the contract;
/// the short version: `push` gives the verdict `solve_certified` would
/// give on the concatenation of everything accepted so far plus the push,
/// a rejected push leaves no trace, and only touched components are
/// re-solved.
pub struct IncrementalSolver {
    cfg: Config,
    /// Groups with more atoms than this take the parallel component
    /// driver (runs on the current rayon pool); `usize::MAX` keeps every
    /// re-solve sequential. Either route is verdict-identical.
    par_cutoff: usize,
    n_atoms: usize,
    /// The accepted ensemble (every pushed column, including the < 2-atom
    /// ones that never constrain a solve).
    ens: Ensemble,
    /// `comp_key[a]` = key (min atom) of the component containing atom
    /// `a`; `comp_key[a] == a` with no `comps` entry = implicit singleton.
    comp_key: Vec<u32>,
    /// Materialized (≥ 2-atom) components keyed by min atom — merged with
    /// the implicit singletons in ascending key order, this is exactly
    /// the component order `c1p_core::solve` concatenates in.
    comps: BTreeMap<u32, Comp>,
    /// Atoms covered by materialized components (so live component count
    /// stays O(1): `n_atoms - materialized_atoms + comps.len()`).
    materialized_atoms: usize,
    /// Cached concatenated witness order of the accepted state.
    order: Vec<Atom>,
    /// Running FNV-1a hash of the accepted column stream (order-sensitive,
    /// append-only — the "canonical prefix hash" the rollback property
    /// tests pin: replaying an accepted stream verbatim reproduces it).
    hash: u64,
    stats: IncrementalStats,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_fold_col(mut h: u64, col: &[Atom]) -> u64 {
    h = fnv_fold(h, col.len() as u64);
    for &a in col {
        h = fnv_fold(h, a as u64);
    }
    h
}

/// The stream hash of a fresh session over `n_atoms` atoms — what
/// [`IncrementalSolver::stream_hash`] reports before any push. The public
/// fold (with [`fold_stream_hash`]) lets a *remote* client mirror the
/// server's stream hash push by push, which is the client side of the
/// recovered-hash handshake: after an ambiguous lost ack, compare the
/// server's reported hash against the locally folded one to decide
/// whether the push applied.
pub fn initial_stream_hash(n_atoms: usize) -> u64 {
    fnv_fold(FNV_OFFSET, n_atoms as u64)
}

/// Folds one accepted delta into stream hash `h`, exactly as
/// [`IncrementalSolver::push`] does on accept (rejected pushes fold
/// nothing). See [`initial_stream_hash`] for the handshake this enables.
pub fn fold_stream_hash(mut h: u64, delta: &Ensemble) -> u64 {
    for col in delta.columns() {
        h = fnv_fold_col(h, col);
    }
    h
}

/// Sparse union-find over component keys (absent key = root); unions keep
/// the *smaller* key as root, so a group's root is its min atom.
fn find(parent: &HashMap<u32, u32>, mut k: u32) -> u32 {
    while let Some(&p) = parent.get(&k) {
        k = p;
    }
    k
}

impl IncrementalSolver {
    /// A fresh session over `n_atoms` atoms, no columns accepted yet
    /// (every atom its own component; the witness order is the identity,
    /// matching a one-shot solve of the empty ensemble).
    pub fn new(n_atoms: usize) -> IncrementalSolver {
        IncrementalSolver::with_config(n_atoms, Config::default(), usize::MAX)
    }

    /// [`IncrementalSolver::new`] with an explicit solver configuration
    /// and parallel routing cutoff: re-solved groups with more atoms than
    /// `par_cutoff` run [`c1p_core::parallel::solve_component_par`] on the
    /// current rayon pool (install the session's pushes on a pool to use
    /// it); smaller groups — and everything when `par_cutoff` is
    /// `usize::MAX` — run sequentially. Verdicts are identical either way.
    pub fn with_config(n_atoms: usize, cfg: Config, par_cutoff: usize) -> IncrementalSolver {
        IncrementalSolver {
            cfg,
            par_cutoff,
            n_atoms,
            ens: Ensemble::new(n_atoms),
            comp_key: (0..n_atoms as u32).collect(),
            comps: BTreeMap::new(),
            materialized_atoms: 0,
            order: (0..n_atoms as u32).collect(),
            hash: fnv_fold(FNV_OFFSET, n_atoms as u64),
            stats: IncrementalStats::default(),
        }
    }

    /// Atom count fixed at session open.
    pub fn n_atoms(&self) -> usize {
        self.n_atoms
    }

    /// The accepted ensemble (what a one-shot solve of this session's
    /// state would be handed).
    pub fn ensemble(&self) -> &Ensemble {
        &self.ens
    }

    /// The current witness order of the accepted state — identical to
    /// `c1p_core::solve(self.ensemble())`'s answer.
    pub fn order(&self) -> &[Atom] {
        &self.order
    }

    /// Order-sensitive hash of the accepted column stream. Two sessions
    /// that accepted the same columns in the same order agree; a rejected
    /// push leaves it untouched.
    pub fn stream_hash(&self) -> u64 {
        self.hash
    }

    /// Live component count (implicit singleton atoms included).
    pub fn n_components(&self) -> usize {
        self.n_atoms - self.materialized_atoms + self.comps.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Validates and pushes a batch of columns (any order, unsorted
    /// entries fine — [`Ensemble::from_columns`] rules). A validation
    /// error leaves the session untouched and is *not* a verdict.
    pub fn push_columns(
        &mut self,
        cols: Vec<Vec<Atom>>,
    ) -> Result<PushVerdict, c1p_matrix::EnsembleError> {
        let delta = Ensemble::from_columns(self.n_atoms, cols)?;
        Ok(self.push(&delta))
    }

    /// Replays one durably-logged *accepted* push: the write-ahead-log
    /// recovery entry point. The recorded post-push stream hash is
    /// checked **before** anything is applied (the hash folds only the
    /// column stream, so the post-state is computable up front); a
    /// mismatch refuses the delta with the solver untouched. A delta
    /// that hashes right but no longer accepts (impossible for an intact
    /// log — verdicts are deterministic) is rolled back by the ordinary
    /// [`IncrementalSolver::push`] rollback and reported as
    /// [`ReplayError::Rejected`]. On success the session state is
    /// bit-identical to the state that originally acknowledged the push.
    pub fn replay_accepted(
        &mut self,
        delta: &Ensemble,
        recorded_hash: u64,
    ) -> Result<(), ReplayError> {
        assert_eq!(delta.n_atoms(), self.n_atoms, "replay must match the session atom count");
        let tentative = fold_stream_hash(self.hash, delta);
        if tentative != recorded_hash {
            return Err(ReplayError::HashMismatch { expected: recorded_hash, actual: tentative });
        }
        match self.push(delta) {
            Ok(_) => {
                debug_assert_eq!(self.hash, recorded_hash, "push folds the same hash");
                Ok(())
            }
            Err(_) => Err(ReplayError::Rejected),
        }
    }

    /// Pushes a batch of new columns and returns the verdict for the
    /// extended ensemble: the witness order `solve_certified` would
    /// return on the concatenation, or its certified rejection — in which
    /// case the session rolls back to the pre-push state.
    ///
    /// # Panics
    ///
    /// If `delta.n_atoms()` differs from the session's atom count (the
    /// serving layer checks this at admission; in-process callers own the
    /// invariant).
    pub fn push(&mut self, delta: &Ensemble) -> PushVerdict {
        assert_eq!(delta.n_atoms(), self.n_atoms, "push must match the session atom count");
        self.stats.pushes += 1;
        let m0 = self.ens.n_columns();
        // tentatively extend; rollback = truncate back to m0
        for col in delta.columns() {
            self.ens.push_column(col.clone());
        }
        // group the touched components: each new column unions the
        // components of its atoms
        let mut parent: HashMap<u32, u32> = HashMap::new();
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        for col in delta.columns() {
            if col.len() < 2 {
                continue;
            }
            let mut root = find(&parent, self.comp_key[col[0] as usize]);
            touched.insert(self.comp_key[col[0] as usize]);
            for &a in &col[1..] {
                let key = self.comp_key[a as usize];
                touched.insert(key);
                let r = find(&parent, key);
                if r != root {
                    let (lo, hi) = (root.min(r), root.max(r));
                    parent.insert(hi, lo);
                    root = lo;
                }
            }
        }
        // groups keyed by root (= min atom of the merged group): member
        // component keys ascending, then the group's new column ids
        let mut groups: BTreeMap<u32, (Vec<u32>, Vec<u32>)> = BTreeMap::new();
        for &k in &touched {
            groups.entry(find(&parent, k)).or_default().0.push(k);
        }
        for (i, col) in delta.columns().iter().enumerate() {
            if col.len() < 2 {
                continue;
            }
            let root = find(&parent, self.comp_key[col[0] as usize]);
            groups.get_mut(&root).expect("new column's group exists").1.push((m0 + i) as u32);
        }
        // re-solve each merged group, first failure (in min-atom order)
        // wins — exactly the order the one-shot component loop fails in
        let mut staged: Vec<(u32, Vec<u32>, Comp)> = Vec::with_capacity(groups.len());
        for (&root, (keys, new_ids)) in &groups {
            let mut atoms: Vec<Atom> = Vec::new();
            let mut col_ids: Vec<u32> = Vec::new();
            for k in keys {
                match self.comps.get(k) {
                    Some(c) => {
                        atoms.extend_from_slice(&c.atoms);
                        col_ids.extend_from_slice(&c.col_ids);
                    }
                    None => atoms.push(*k), // implicit singleton {k}
                }
            }
            atoms.sort_unstable();
            col_ids.sort_unstable();
            col_ids.extend_from_slice(new_ids);
            let cols = col_ids.iter().map(|&ci| self.ens.column(ci as usize));
            let res = if atoms.len() > self.par_cutoff {
                solve_component_par(&atoms, cols, &self.cfg)
            } else {
                solve_component(&atoms, cols, &self.cfg)
            };
            match res {
                Ok(fragment) => {
                    staged.push((root, keys.clone(), Comp { atoms, col_ids, order: fragment }))
                }
                Err(rej) => {
                    // certify against the tentatively extended ensemble —
                    // the exact input one-shot extraction would see —
                    // then roll every trace of the push back
                    let cert = certify_rejection(&self.ens, rej);
                    self.ens.truncate_columns(m0);
                    self.stats.rejected_pushes += 1;
                    self.stats.components_resolved += (staged.len() + 1) as u64;
                    return Err(cert);
                }
            }
        }
        // commit
        let touched_total: usize = groups.values().map(|(keys, _)| keys.len()).sum();
        self.stats.components_resolved += staged.len() as u64;
        self.stats.components_reused += (self.n_components() - touched_total) as u64;
        for (root, keys, comp) in staged {
            for k in keys {
                if let Some(old) = self.comps.remove(&k) {
                    self.materialized_atoms -= old.atoms.len();
                }
            }
            for &a in &comp.atoms {
                self.comp_key[a as usize] = root;
            }
            self.stats.atoms_resolved += comp.atoms.len() as u64;
            self.materialized_atoms += comp.atoms.len();
            self.comps.insert(root, comp);
        }
        for col in delta.columns() {
            self.hash = fnv_fold_col(self.hash, col);
        }
        // splice: materialized fragments and implicit singletons share
        // one ascending key order, walked in a single O(n) merge
        self.order.clear();
        let mut comp_iter = self.comps.iter().peekable();
        for a in 0..self.n_atoms as u32 {
            if let Some(&(&k, comp)) = comp_iter.peek() {
                if k == a {
                    self.order.extend_from_slice(&comp.order);
                    comp_iter.next();
                    continue;
                }
            }
            if self.comp_key[a as usize] == a {
                self.order.push(a);
            }
        }
        Ok(self.order.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::verify_linear;

    #[test]
    fn empty_session_matches_one_shot_identity() {
        let inc = IncrementalSolver::new(5);
        assert_eq!(inc.order(), &[0, 1, 2, 3, 4]);
        assert_eq!(inc.order().to_vec(), c1p_core::solve(&Ensemble::new(5)).unwrap());
        assert_eq!(inc.n_components(), 5);
    }

    #[test]
    fn public_fold_mirrors_the_solver_hash_push_by_push() {
        // the client side of the recovered-hash handshake: folding
        // accepted deltas locally must track stream_hash exactly, and a
        // rejected push must leave both sides untouched
        let mut inc = IncrementalSolver::new(6);
        let mut mirror = initial_stream_hash(6);
        assert_eq!(mirror, inc.stream_hash());
        for cols in
            [vec![vec![0u32, 1], vec![1, 2]], vec![vec![3, 4]], vec![vec![2, 3], vec![4, 5]]]
        {
            let delta = Ensemble::from_columns(6, cols).unwrap();
            let folded = fold_stream_hash(mirror, &delta);
            assert!(inc.push(&delta).is_ok());
            mirror = folded;
            assert_eq!(mirror, inc.stream_hash(), "fold must track every accepted push");
        }
        // force a rejection: {0,2} against the chain 0-1-2 plus {1,3}… use
        // a known non-C1P extension: columns pairing all three of 0,1,2
        let reject =
            Ensemble::from_columns(6, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1, 2, 3]])
                .unwrap();
        if inc.push(&reject).is_err() {
            assert_eq!(mirror, inc.stream_hash(), "rejected pushes fold nothing");
        }
    }

    #[test]
    fn pushes_agree_with_one_shot_and_reuse_components() {
        let mut inc = IncrementalSolver::new(8);
        // two independent blocks {0..4} and {4..8}
        let a = inc.push_columns(vec![vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap().unwrap();
        let ens1 = Ensemble::from_columns(8, vec![vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        assert_eq!(a, c1p_core::solve(&ens1).unwrap());
        verify_linear(inc.ensemble(), inc.order()).unwrap();
        // extending the *other* block must not re-solve the first
        let before = inc.stats();
        let b = inc.push_columns(vec![vec![4, 5, 6], vec![6, 7]]).unwrap().unwrap();
        let after = inc.stats();
        assert_eq!(after.components_resolved - before.components_resolved, 1);
        assert!(after.components_reused > 0);
        let mut cols = ens1.columns().to_vec();
        cols.extend([vec![4, 5, 6], vec![6, 7]]);
        let ens2 = Ensemble::from_columns(8, cols).unwrap();
        assert_eq!(b, c1p_core::solve(&ens2).unwrap());
    }

    #[test]
    fn rejected_push_rolls_back_everything() {
        let mut inc = IncrementalSolver::new(6);
        inc.push_columns(vec![vec![0, 1], vec![1, 2]]).unwrap().unwrap();
        let (hash, order, ens) = (inc.stream_hash(), inc.order().to_vec(), inc.ensemble().clone());
        // the 3-cycle {0,1},{1,2},{0,2} is Tucker's M_I(1): push {0,2}
        // plus an unrelated good column — the whole push must roll back
        let cert = inc.push_columns(vec![vec![0, 2], vec![3, 4]]).unwrap().unwrap_err();
        assert!(!cert.rejection.atoms.is_empty());
        // the witness matches one-shot extraction on the concatenation
        let mut cols = ens.columns().to_vec();
        cols.extend([vec![0, 2], vec![3, 4]]);
        let concat = Ensemble::from_columns(6, cols).unwrap();
        let one_shot = c1p_cert::solve_certified(&concat).unwrap_err();
        assert_eq!(cert.rejection, one_shot.rejection);
        assert_eq!(cert.witness, one_shot.witness);
        c1p_cert::verify_witness(&concat, &cert.witness).unwrap();
        // rollback: state byte-identical to before the push
        assert_eq!(inc.stream_hash(), hash);
        assert_eq!(inc.order(), &order[..]);
        assert_eq!(inc.ensemble(), &ens);
        assert_eq!(inc.stats().rejected_pushes, 1);
        // and the session keeps accepting afterwards
        inc.push_columns(vec![vec![3, 4]]).unwrap().unwrap();
    }

    #[test]
    fn trivial_columns_are_accepted_without_resolves() {
        let mut inc = IncrementalSolver::new(4);
        let order = inc.push_columns(vec![vec![], vec![2]]).unwrap().unwrap();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(inc.stats().components_resolved, 0);
        assert_eq!(inc.ensemble().n_columns(), 2, "trivial columns still recorded");
        // ... and still hash (replay equivalence depends on them)
        let mut twin = IncrementalSolver::new(4);
        assert_ne!(twin.stream_hash(), inc.stream_hash());
        twin.push_columns(vec![vec![], vec![2]]).unwrap().unwrap();
        assert_eq!(twin.stream_hash(), inc.stream_hash());
    }

    #[test]
    fn replay_reproduces_state_and_refuses_divergent_logs() {
        // record a two-push history on one session ...
        let mut live = IncrementalSolver::new(8);
        let d1 = Ensemble::from_columns(8, vec![vec![0, 1], vec![1, 2]]).unwrap();
        let d2 = Ensemble::from_columns(8, vec![vec![4, 5, 6]]).unwrap();
        live.push(&d1).unwrap();
        let h1 = live.stream_hash();
        live.push(&d2).unwrap();
        let h2 = live.stream_hash();
        // ... and replay it on a twin: state must be bit-identical
        let mut twin = IncrementalSolver::new(8);
        twin.replay_accepted(&d1, h1).unwrap();
        twin.replay_accepted(&d2, h2).unwrap();
        assert_eq!(twin.stream_hash(), live.stream_hash());
        assert_eq!(twin.order(), live.order());
        assert_eq!(twin.ensemble(), live.ensemble());
        // a wrong recorded hash refuses without touching the session
        let mut cold = IncrementalSolver::new(8);
        let err = cold.replay_accepted(&d1, h1 ^ 1).unwrap_err();
        assert_eq!(err, ReplayError::HashMismatch { expected: h1 ^ 1, actual: h1 });
        assert_eq!(cold.ensemble().n_columns(), 0, "refused replay leaves no trace");
        assert_eq!(cold.stats().pushes, 0);
        // a delta that hashes right but rejects reports log damage and
        // rolls back (forge the hash the bad delta would produce)
        let bad = Ensemble::from_columns(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        let mut probe = IncrementalSolver::new(3);
        let mut forged = probe.stream_hash();
        for col in bad.columns() {
            forged = fnv_fold_col(forged, col);
        }
        assert_eq!(probe.replay_accepted(&bad, forged), Err(ReplayError::Rejected));
        assert_eq!(probe.ensemble().n_columns(), 0, "rejected replay rolled back");
    }

    #[test]
    #[should_panic(expected = "atom count")]
    fn mismatched_push_panics() {
        let mut inc = IncrementalSolver::new(4);
        let _ = inc.push(&Ensemble::new(5));
    }

    #[test]
    fn validation_errors_leave_no_trace() {
        let mut inc = IncrementalSolver::new(4);
        let err = inc.push_columns(vec![vec![0, 9]]).unwrap_err();
        assert!(matches!(err, c1p_matrix::EnsembleError::AtomOutOfRange { .. }));
        assert_eq!(inc.ensemble().n_columns(), 0);
        assert_eq!(inc.stats().pushes, 0);
    }
}

//! The certificate differential suite (seeded, reproducible):
//!
//! * planted `M_*` embeddings padded with random C1P noise rows/columns —
//!   every rejection from `solve` *and* `solve_par` must extract to a
//!   witness that `verify_witness` accepts;
//! * random rejects confirmed by the PQ baseline — same contract;
//! * brute-force cross-check on small instances (n ≤ 7): verdicts match
//!   the exhaustive oracle, and on every reject the witness's submatrix is
//!   independently re-refuted by brute force.

use c1p_cert::{extract_witness, solve_certified, solve_par_certified, verify_witness};
use c1p_matrix::generate::{planted_c1p, PlantedShape};
use c1p_matrix::tucker::{self, TuckerFamily};
use c1p_matrix::verify::brute_force_linear;
use c1p_matrix::{Atom, Ensemble};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Both solvers must reject `ens`, and both rejections must certify.
fn assert_certified(ens: &Ensemble, ctx: &str) {
    let rej_seq = c1p_core::solve(ens).unwrap_err();
    let w_seq = extract_witness(ens, &rej_seq).unwrap_or_else(|e| panic!("{ctx}: seq {e}"));
    verify_witness(ens, &w_seq).unwrap_or_else(|e| panic!("{ctx}: seq witness {e}"));
    let rej_par = c1p_core::parallel::solve_par(ens).0.unwrap_err();
    let w_par = extract_witness(ens, &rej_par).unwrap_or_else(|e| panic!("{ctx}: par {e}"));
    verify_witness(ens, &w_par).unwrap_or_else(|e| panic!("{ctx}: par witness {e}"));
}

#[test]
fn all_generator_families_certify_with_k_swept() {
    let mut fams: Vec<TuckerFamily> = vec![TuckerFamily::MIV, TuckerFamily::MV];
    for k in 1..=7 {
        fams.push(TuckerFamily::MI(k));
        fams.push(TuckerFamily::MII(k));
        fams.push(TuckerFamily::MIII(k));
    }
    for fam in fams {
        assert_certified(&fam.generate(), &fam.to_string());
    }
}

#[test]
fn planted_embeddings_under_noise_certify() {
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(0xCE27 ^ seed);
        let n = 30 + rng.random_range(0..120usize);
        // C1P noise: a planted instance over the full atom range
        let (noise, _) = planted_c1p(
            PlantedShape { n_atoms: n, n_columns: n, min_len: 2, max_len: (n / 3).max(2) },
            &mut rng,
        );
        let fam = match seed % 5 {
            0 => TuckerFamily::MI(1 + (seed as usize / 5) % 5),
            1 => TuckerFamily::MII(1 + (seed as usize / 5) % 5),
            2 => TuckerFamily::MIII(1 + (seed as usize / 5) % 5),
            3 => TuckerFamily::MIV,
            _ => TuckerFamily::MV,
        };
        let obs = fam.generate();
        let offset = rng.random_range(0..=n - obs.n_atoms());
        let mut cols = noise.columns().to_vec();
        cols.extend(
            obs.columns().iter().map(|c| c.iter().map(|&a| a + offset as Atom).collect::<Vec<_>>()),
        );
        let ens = Ensemble::from_columns(n, cols).unwrap();
        assert_certified(&ens, &format!("seed {seed}: {fam} at {offset} in n={n}"));
    }
}

#[test]
fn pq_confirmed_random_rejects_certify() {
    let mut rejects = 0usize;
    for seed in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(0x9E1E ^ seed);
        let n = rng.random_range(6..=28);
        let m = rng.random_range(3..=10);
        let cols: Vec<Vec<u32>> = (0..m)
            .map(|_| {
                let mut col: Vec<u32> =
                    (0..n as u32).filter(|_| rng.random_range(0..n) < 5).collect();
                if col.len() < 2 {
                    col = vec![rng.random_range(0..n as u32 - 1), n as u32 - 1];
                    col.dedup();
                }
                col
            })
            .collect();
        let ens = Ensemble::from_columns(n, cols).unwrap();
        if c1p_pqtree::solve(ens.n_atoms(), ens.columns()).is_some() {
            assert!(c1p_core::solve(&ens).is_ok(), "seed {seed}: pq accepts, dc rejects");
            continue;
        }
        rejects += 1;
        assert_certified(&ens, &format!("random seed {seed}"));
    }
    assert!(rejects > 60, "rejection path under-exercised ({rejects}/300)");
}

#[test]
fn brute_force_cross_check_small() {
    // exhaustive: every 4-atom instance with two arbitrary mask columns
    for c1 in 1u32..16 {
        for c2 in 1u32..16 {
            let cols: Vec<Vec<u32>> = [c1, c2]
                .iter()
                .map(|&m| (0..4u32).filter(|&a| m >> a & 1 == 1).collect())
                .collect();
            small_case(Ensemble::from_columns(4, cols).unwrap(), &format!("exh {c1},{c2}"));
        }
    }
    // seeded random up to n = 7
    for seed in 0..1500u64 {
        let mut rng = SmallRng::seed_from_u64(0x51AA ^ seed);
        let n = rng.random_range(3..=7usize);
        let m = rng.random_range(1..=6usize);
        let cols: Vec<Vec<u32>> = (0..m)
            .map(|_| {
                let mask = rng.random_range(1u64..(1 << n));
                (0..n as u32).filter(|&a| mask >> a & 1 == 1).collect()
            })
            .collect();
        small_case(Ensemble::from_columns(n, cols).unwrap(), &format!("seed {seed}"));
    }
}

fn small_case(ens: Ensemble, ctx: &str) {
    let brute = brute_force_linear(&ens).is_some();
    match c1p_core::solve(&ens) {
        Ok(order) => {
            assert!(brute, "{ctx}: solver accepted a brute-force-rejected instance");
            c1p_matrix::verify_linear(&ens, &order).unwrap();
        }
        Err(rej) => {
            assert!(!brute, "{ctx}: solver rejected a C1P instance\n{}", ens.to_matrix());
            let w = extract_witness(&ens, &rej).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            verify_witness(&ens, &w).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            // double-check the named submatrix with the exhaustive oracle
            let sub = c1p_cert::submatrix(&ens, &w.atom_rows, &w.column_ids).unwrap();
            assert!(brute_force_linear(&sub).is_none(), "{ctx}: witness submatrix is C1P");
        }
    }
}

#[test]
fn certified_drivers_round_trip() {
    let good = planted_c1p(
        PlantedShape { n_atoms: 60, n_columns: 120, min_len: 2, max_len: 20 },
        &mut SmallRng::seed_from_u64(7),
    )
    .0;
    assert!(solve_certified(&good).is_ok());
    assert!(solve_par_certified(&good).is_ok());
    let bad = tucker::embed_obstruction(&tucker::m_ii(3), 60, 20, &[(0, 30), (25, 30)]);
    for cert in [solve_certified(&bad).unwrap_err(), solve_par_certified(&bad).unwrap_err()] {
        assert!(!cert.rejection.atoms.is_empty());
        verify_witness(&bad, &cert.witness).unwrap();
    }
}

//! The certificate format and its solver-independent checker.
//!
//! Trust base of [`verify_witness`]: `c1p-matrix` only — the submatrix is
//! rebuilt from the input positions, its family membership is confirmed by
//! [`classify`]'s exact isomorphism check, and its non-realizability is
//! re-proven by brute force (≤ 8 atoms) or by an exhaustive
//! frontier-propagation search (above). Neither the divide-and-conquer
//! solver nor the PQ-tree is consulted.

use c1p_matrix::tucker::{classify, TuckerFamily};
use c1p_matrix::verify::brute_force_linear;
use c1p_matrix::{Atom, Ensemble};
use std::fmt;

/// A checkable certificate of non-realizability: the submatrix of the
/// input given by `atom_rows × column_ids` is isomorphic to
/// `family`'s generator, which has no consecutive-ones order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuckerWitness {
    /// The claimed obstruction family (with its parameter).
    pub family: TuckerFamily,
    /// Global atom ids of the submatrix rows, sorted ascending.
    pub atom_rows: Vec<Atom>,
    /// Global column indices into the input ensemble, sorted ascending.
    pub column_ids: Vec<u32>,
}

impl fmt::Display for TuckerWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on atoms {:?} via columns {:?}", self.family, self.atom_rows, self.column_ids)
    }
}

/// Why a witness failed to verify (or extraction failed to produce one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// A named atom row is not an input atom, is duplicated, or unsorted.
    BadAtoms,
    /// A named column id is not an input column, is duplicated, or
    /// unsorted.
    BadColumns,
    /// The named submatrix is not isomorphic to the claimed family
    /// (`recognized` reports what, if anything, it *is* isomorphic to).
    NotIsomorphic { claimed: TuckerFamily, recognized: Option<TuckerFamily> },
    /// The refutation search found a realization: the named submatrix is
    /// C1P, so it certifies nothing.
    SubmatrixIsC1p,
    /// The refutation search exceeded its node budget (witness too large
    /// to check exhaustively).
    RefutationBudget,
    /// Extraction: the rejection's evidence restriction (and the full
    /// input) tested C1P — the rejection is stale or the solver mis-fired.
    EvidenceNotRejectable,
    /// Extraction: the shrunken minimal submatrix did not classify into
    /// any family (would contradict Tucker's theorem — internal error).
    Unrecognized,
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::BadAtoms => write!(f, "witness atom rows are invalid"),
            CertError::BadColumns => write!(f, "witness column ids are invalid"),
            CertError::NotIsomorphic { claimed, recognized } => match recognized {
                Some(r) => write!(f, "submatrix claims {claimed} but is {r}"),
                None => write!(f, "submatrix claims {claimed} but matches no Tucker family"),
            },
            CertError::SubmatrixIsC1p => write!(f, "named submatrix has a realization"),
            CertError::RefutationBudget => write!(f, "refutation search budget exceeded"),
            CertError::EvidenceNotRejectable => write!(f, "rejection evidence is realizable"),
            CertError::Unrecognized => write!(f, "minimal submatrix matches no Tucker family"),
        }
    }
}

impl std::error::Error for CertError {}

/// The submatrix of `ens` named by sorted atom rows × column ids, with
/// atoms renumbered to `0..atom_rows.len()` in order.
pub fn submatrix(
    ens: &Ensemble,
    atom_rows: &[Atom],
    column_ids: &[u32],
) -> Result<Ensemble, CertError> {
    let n = ens.n_atoms();
    let sorted = |xs: &[u32]| xs.windows(2).all(|w| w[0] < w[1]);
    if atom_rows.is_empty()
        || !sorted(atom_rows)
        || atom_rows.last().is_some_and(|&a| a as usize >= n)
    {
        return Err(CertError::BadAtoms);
    }
    if !sorted(column_ids) || column_ids.last().is_some_and(|&c| c as usize >= ens.n_columns()) {
        return Err(CertError::BadColumns);
    }
    Ensemble::from_sorted_columns(atom_rows.len(), ens.restrict_to(atom_rows, column_ids))
        .map_err(|_| CertError::BadColumns)
}

/// Node budget for the refutation search — families up to the sizes any
/// minimal witness reaches in practice refute in a few thousand nodes;
/// this bound is the honesty backstop, not a tuning knob.
const REFUTE_BUDGET: usize = 4_000_000;

/// Checks a witness against the input it claims to refute:
///
/// 1. the named positions form a valid submatrix of `ens`;
/// 2. that submatrix is isomorphic to the claimed Tucker family
///    ([`classify`]'s structural match + exact column-multiset
///    comparison);
/// 3. the submatrix has no consecutive-ones order, re-proven here by an
///    independent exhaustive search.
///
/// A passing witness therefore proves `ens` non-C1P (C1P is closed under
/// taking submatrices) with no trust in any solver.
pub fn verify_witness(ens: &Ensemble, w: &TuckerWitness) -> Result<(), CertError> {
    verify_witness_with_budget(ens, w, REFUTE_BUDGET)
}

/// [`verify_witness`] with an explicit refutation-search node budget — the
/// injection seam that lets tests pin the budget-exhaustion contract
/// (`None` from the search must surface as [`CertError::RefutationBudget`],
/// never masquerade as a verdict either way). Not a stable API.
#[doc(hidden)]
pub fn verify_witness_with_budget(
    ens: &Ensemble,
    w: &TuckerWitness,
    budget: usize,
) -> Result<(), CertError> {
    let sub = submatrix(ens, &w.atom_rows, &w.column_ids)?;
    match classify(&sub) {
        Some(found) if found == w.family => {}
        recognized => {
            return Err(CertError::NotIsomorphic { claimed: w.family, recognized });
        }
    }
    if sub.n_atoms() <= 8 {
        if brute_force_linear(&sub).is_some() {
            return Err(CertError::SubmatrixIsC1p);
        }
        return Ok(());
    }
    // Budget-exhaustion contract (audited at every refute_search call
    // site — this is the only one): `None` is "undecided", which must
    // surface as an error, never be folded into either verdict.
    match refute_search(&sub, budget) {
        Some(true) => Ok(()),
        Some(false) => Err(CertError::SubmatrixIsC1p),
        None => Err(CertError::RefutationBudget),
    }
}

/// Exhaustive frontier search for a realization: atoms are placed left to
/// right; a column with some atoms placed and some not ("open") must
/// contain every subsequently placed atom until it closes, or its block is
/// interrupted for good — so candidates are exactly the unplaced atoms in
/// the intersection of all open columns. Complete, solver-independent,
/// exponential only in pathological inputs (hence the node budget).
///
/// Returns `Some(true)` when the search space is exhausted (non-C1P
/// proven), `Some(false)` when a realization is found, `None` on budget
/// exhaustion.
fn refute_search(ens: &Ensemble, budget: usize) -> Option<bool> {
    refute_search_counted(ens, budget).0
}

/// [`refute_search`] also reporting the nodes expanded — lets tests pin
/// that the bit-parallel candidate kernel preserves the scalar search
/// tree *exactly* (same verdicts at the same node counts, so budget
/// exhaustion fires at identical points).
fn refute_search_counted(ens: &Ensemble, budget: usize) -> (Option<bool>, usize) {
    let n = ens.n_atoms();
    let m = ens.n_columns();
    let width = n.div_ceil(64);
    // bit rows: column c occupies col_bits[c*width..(c+1)*width]
    let mut col_bits = vec![0u64; m * width];
    for (c, col) in ens.columns().iter().enumerate() {
        for &a in col {
            col_bits[c * width + (a as usize >> 6)] |= 1u64 << (a & 63);
        }
    }
    let mut uni = vec![!0u64; width];
    if n & 63 != 0 {
        uni[width - 1] = (1u64 << (n & 63)) - 1;
    }
    let mut search = Search {
        n,
        width,
        col_bits,
        uni,
        memb: ens.atom_memberships(),
        col_len: ens.columns().iter().map(Vec::len).collect(),
        placed_cnt: vec![0usize; m],
        used: vec![0u64; width],
        cand: vec![0u64; (n + 1) * width],
        budget,
    };
    let r = search.dfs(0);
    let expanded = budget - search.budget;
    (
        match r {
            Some(true) => Some(false), // order exists → refutation fails
            Some(false) => Some(true), // exhausted → non-C1P proven
            None => None,
        },
        expanded,
    )
}

/// State of one [`refute_search`] run. The candidate computation is
/// word-parallel (DESIGN.md §14): candidates at a node are exactly the
/// unplaced atoms in the intersection of all open columns, i.e. the set
/// bits of `!used ∧ ⋂ open-column rows` — one AND-fold over packed rows
/// instead of a binary search per (atom, open column) pair. Iterating
/// those bits ascending reproduces the scalar `for a in 0..n` loop
/// verbatim, so the search tree (and hence budget consumption) is
/// bit-identical to the pre-bitmat implementation.
struct Search {
    n: usize,
    /// Words per row.
    width: usize,
    /// Packed column rows, `width` words each.
    col_bits: Vec<u64>,
    /// All-ones mask over `0..n`.
    uni: Vec<u64>,
    memb: Vec<Vec<u32>>,
    col_len: Vec<usize>,
    placed_cnt: Vec<usize>,
    /// Placed-atom bitset.
    used: Vec<u64>,
    /// Per-depth candidate masks (`width` words per recursion level), so
    /// the DFS allocates nothing per node.
    cand: Vec<u64>,
    budget: usize,
}

impl Search {
    /// `Some(true)` = a realization completes from this prefix.
    fn dfs(&mut self, pos: usize) -> Option<bool> {
        if self.budget == 0 {
            return None;
        }
        self.budget -= 1;
        if pos == self.n {
            return Some(true); // realization found
        }
        let w = self.width;
        let base = pos * w;
        for i in 0..w {
            self.cand[base + i] = self.uni[i] & !self.used[i];
        }
        for c in 0..self.placed_cnt.len() {
            if self.placed_cnt[c] > 0 && self.placed_cnt[c] < self.col_len[c] {
                for i in 0..w {
                    self.cand[base + i] &= self.col_bits[c * w + i];
                }
            }
        }
        for wi in 0..w {
            // this level's mask is fixed before recursing; deeper levels
            // use their own slices, so the snapshot below stays valid
            let mut word = self.cand[base + wi];
            while word != 0 {
                let a = ((wi as u32) << 6 | word.trailing_zeros()) as usize;
                word &= word - 1;
                self.used[a >> 6] |= 1u64 << (a & 63);
                for i in 0..self.memb[a].len() {
                    self.placed_cnt[self.memb[a][i] as usize] += 1;
                }
                let r = self.dfs(pos + 1);
                self.used[a >> 6] &= !(1u64 << (a & 63));
                for i in 0..self.memb[a].len() {
                    self.placed_cnt[self.memb[a][i] as usize] -= 1;
                }
                match r {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
            }
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::tucker;

    /// The pre-bitmat scalar search, kept verbatim as the reference the
    /// word-parallel kernel is differential-tested against: same verdict
    /// AND same node count on every input.
    fn scalar_refute_counted(ens: &Ensemble, budget: usize) -> (Option<bool>, usize) {
        struct S<'a> {
            ens: &'a Ensemble,
            memb: Vec<Vec<u32>>,
            col_len: Vec<usize>,
            placed_cnt: Vec<usize>,
            used: Vec<bool>,
            budget: usize,
        }
        impl S<'_> {
            fn dfs(&mut self, pos: usize) -> Option<bool> {
                if self.budget == 0 {
                    return None;
                }
                self.budget -= 1;
                let n = self.ens.n_atoms();
                if pos == n {
                    return Some(true);
                }
                let open: Vec<u32> = (0..self.placed_cnt.len() as u32)
                    .filter(|&c| {
                        self.placed_cnt[c as usize] > 0
                            && self.placed_cnt[c as usize] < self.col_len[c as usize]
                    })
                    .collect();
                for a in 0..n as u32 {
                    if self.used[a as usize] {
                        continue;
                    }
                    if !open.iter().all(|&c| self.ens.column(c as usize).binary_search(&a).is_ok())
                    {
                        continue;
                    }
                    self.used[a as usize] = true;
                    for i in 0..self.memb[a as usize].len() {
                        self.placed_cnt[self.memb[a as usize][i] as usize] += 1;
                    }
                    let r = self.dfs(pos + 1);
                    self.used[a as usize] = false;
                    for i in 0..self.memb[a as usize].len() {
                        self.placed_cnt[self.memb[a as usize][i] as usize] -= 1;
                    }
                    match r {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => return None,
                    }
                }
                Some(false)
            }
        }
        let mut s = S {
            ens,
            memb: ens.atom_memberships(),
            col_len: ens.columns().iter().map(Vec::len).collect(),
            placed_cnt: vec![0usize; ens.n_columns()],
            used: vec![false; ens.n_atoms()],
            budget,
        };
        let r = s.dfs(0);
        let expanded = budget - s.budget;
        (
            match r {
                Some(true) => Some(false),
                Some(false) => Some(true),
                None => None,
            },
            expanded,
        )
    }

    #[test]
    fn bit_kernel_preserves_scalar_search_tree() {
        // verdict AND node count must match on obstructions (refuted),
        // realizable inputs (order found), and truncated budgets (None at
        // the same node) — including multi-word universes (k=70 → 72 atoms)
        let mut inputs: Vec<Ensemble> =
            tucker::small_obstructions().into_iter().map(|(_, e)| e).collect();
        for k in [10usize, 30, 70] {
            inputs.push(tucker::m_i(k));
            inputs.push(tucker::m_ii(k));
            inputs.push(tucker::m_iii(k));
        }
        inputs.push(
            Ensemble::from_sorted_columns(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4]]).unwrap(),
        );
        inputs.push(Ensemble::from_sorted_columns(3, vec![]).unwrap());
        for ens in &inputs {
            let full = scalar_refute_counted(ens, REFUTE_BUDGET);
            assert_eq!(refute_search_counted(ens, REFUTE_BUDGET), full);
            // truncate to just before the scalar run's end: both must hit
            // the budget wall at the same node
            if full.1 > 1 {
                let cut = full.1 - 1;
                assert_eq!(refute_search_counted(ens, cut), scalar_refute_counted(ens, cut));
            }
        }
    }

    #[test]
    fn verify_budget_exhaustion_surfaces_as_error() {
        // satellite-1 contract: with the budget shrunk to 1 on a known-bad
        // family too large for the brute-force path, verify must report
        // RefutationBudget — not "verified" and not SubmatrixIsC1p
        let ens = tucker::m_i(30);
        assert!(ens.n_atoms() > 8, "must take the refutation-search path");
        let w = TuckerWitness {
            family: classify(&ens).expect("M_I(30) classifies"),
            atom_rows: (0..ens.n_atoms() as Atom).collect(),
            column_ids: (0..ens.n_columns() as u32).collect(),
        };
        assert_eq!(verify_witness_with_budget(&ens, &w, 1), Err(CertError::RefutationBudget));
        // the default budget decides it, proving the witness itself is fine
        verify_witness(&ens, &w).unwrap();
    }

    #[test]
    fn refute_search_agrees_with_brute_force_small() {
        for (name, ens) in tucker::small_obstructions() {
            assert_eq!(refute_search(&ens, REFUTE_BUDGET), Some(true), "{name}");
        }
        let good =
            Ensemble::from_sorted_columns(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4]]).unwrap();
        assert_eq!(refute_search(&good, REFUTE_BUDGET), Some(false));
    }

    #[test]
    fn refute_search_handles_large_families() {
        for k in [10usize, 30, 60] {
            assert_eq!(refute_search(&tucker::m_i(k), REFUTE_BUDGET), Some(true), "M_I({k})");
            assert_eq!(refute_search(&tucker::m_ii(k), REFUTE_BUDGET), Some(true), "M_II({k})");
            assert_eq!(refute_search(&tucker::m_iii(k), REFUTE_BUDGET), Some(true), "M_III({k})");
        }
    }

    #[test]
    fn refute_search_budget_exhaustion_is_none() {
        // the honesty backstop: running out of budget must never decide
        // either way (verify_witness maps it to RefutationBudget)
        assert_eq!(refute_search(&tucker::m_i(30), 1), None);
        assert_eq!(refute_search(&tucker::m_ii(10), 3), None);
    }

    #[test]
    fn verify_accepts_the_identity_witness() {
        for (name, ens) in tucker::small_obstructions() {
            let fam = classify(&ens).unwrap();
            let w = TuckerWitness {
                family: fam,
                atom_rows: (0..ens.n_atoms() as Atom).collect(),
                column_ids: (0..ens.n_columns() as u32).collect(),
            };
            verify_witness(&ens, &w).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn verify_rejects_tampered_witnesses() {
        let ens = tucker::m_iv();
        let good = TuckerWitness {
            family: TuckerFamily::MIV,
            atom_rows: (0..6).collect(),
            column_ids: (0..4).collect(),
        };
        verify_witness(&ens, &good).unwrap();
        // wrong family claim
        let w = TuckerWitness { family: TuckerFamily::MV, ..good.clone() };
        assert!(matches!(
            verify_witness(&ens, &w),
            Err(CertError::NotIsomorphic { recognized: Some(TuckerFamily::MIV), .. })
        ));
        // dropped column: remainder is C1P and matches nothing
        let w = TuckerWitness { column_ids: vec![0, 1, 2], ..good.clone() };
        assert!(verify_witness(&ens, &w).is_err());
        // out-of-range / unsorted positions
        let w = TuckerWitness { atom_rows: vec![0, 1, 2, 3, 4, 9], ..good.clone() };
        assert_eq!(verify_witness(&ens, &w), Err(CertError::BadAtoms));
        let w = TuckerWitness { column_ids: vec![1, 0, 2, 3], ..good };
        assert_eq!(verify_witness(&ens, &w), Err(CertError::BadColumns));
    }

    #[test]
    fn verify_rejects_c1p_submatrix_even_if_shaped_right() {
        // a C1P ensemble whose shape resembles no family: classify fails
        let ens =
            Ensemble::from_sorted_columns(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        let w = TuckerWitness {
            family: TuckerFamily::MI(2),
            atom_rows: vec![0, 1, 2, 3],
            column_ids: vec![0, 1, 2],
        };
        assert!(matches!(verify_witness(&ens, &w), Err(CertError::NotIsomorphic { .. })));
    }
}

//! # c1p-cert: Tucker-witness certificates for rejections
//!
//! The solvers in `c1p-core` are half-certifying out of the box: a C1P-yes
//! answer returns a witness order that `verify_linear` checks in `O(p)`,
//! but a C1P-no answer used to be a bare verdict. This crate closes the
//! gap with Tucker's theorem (Tucker \[19\]; the families are generated in
//! [`c1p_matrix::tucker`]): every non-C1P ensemble contains one of
//! `M_I(k), M_II(k), M_III(k), M_IV, M_V` as a submatrix, so every
//! rejection can name one.
//!
//! * [`TuckerWitness`] — a claimed family plus the atom rows and column
//!   ids of a concrete submatrix of the input;
//! * [`extract_witness`] — shrinks a [`Rejection`]'s evidence atoms to a
//!   minimal witness by QuickXplain-style column/atom deletion against the
//!   Booth–Lueker PQ-tree as the incremental non-C1P oracle (the
//!   extraction routes of Chauve–Stephen–Tamayo and Maňuch–Rafiey,
//!   implemented as delta-debugging over the evidence);
//! * [`verify_witness`] — the independent checker: confirms the named
//!   submatrix is isomorphic to the claimed family
//!   ([`c1p_matrix::tucker::classify`], the inverse of the generators) and
//!   re-refutes its realizability *without consulting any solver* (brute
//!   force for ≤ 8 atoms, a budgeted propagation search above);
//! * [`solve_certified`] / [`solve_par_certified`] — `c1p_core` drivers
//!   whose rejections always carry a verified-extractable witness.
//!
//! The soundness split mirrors the accept path: trusting a rejection
//! requires trusting only `verify_witness` (this crate + the generators'
//! brute-force-audited families), never the divide-and-conquer solver or
//! the PQ-tree that produced and shrank it.

mod extract;
mod witness;

pub use extract::extract_witness;
pub use witness::{submatrix, verify_witness, CertError, TuckerWitness};

pub use c1p_matrix::tucker::TuckerFamily;

use c1p_core::Rejection;
use c1p_matrix::{Atom, Ensemble};

/// A rejection bundled with its checkable Tucker witness.
#[derive(Debug, Clone)]
pub struct CertifiedRejection {
    /// The solver's evidence-carrying rejection (global atom ids).
    pub rejection: Rejection,
    /// The minimal Tucker submatrix extracted from that evidence.
    pub witness: TuckerWitness,
}

/// [`c1p_core::solve`] with a certified rejection path: C1P-yes answers
/// return the usual verified witness order, C1P-no answers carry a
/// [`TuckerWitness`] that [`verify_witness`] accepts.
///
/// # Panics
///
/// If witness extraction fails — possible only when the solver rejected a
/// C1P instance, which the verifying merge rules out (mirrors the accept
/// path's "produced order failed verification" internal-error panic).
pub fn solve_certified(ens: &Ensemble) -> Result<Vec<Atom>, CertifiedRejection> {
    solve_certified_with(ens).0
}

/// [`solve_certified`] returning the run's [`c1p_core::SolveStats`]
/// alongside the verdict — the counters (and per-phase wall-clock
/// breakdown) were always collected internally; this variant just stops
/// discarding them. Witness extraction on the reject path is *not*
/// attributed to any phase.
pub fn solve_certified_with(
    ens: &Ensemble,
) -> (Result<Vec<Atom>, CertifiedRejection>, c1p_core::SolveStats) {
    let (res, stats) = c1p_core::solve_with(ens, &c1p_core::Config::default());
    (res.map_err(|rejection| certify_rejection(ens, rejection)), stats)
}

/// [`c1p_core::parallel::solve_par`]'s certified twin.
///
/// # Panics
///
/// See [`solve_certified`].
pub fn solve_par_certified(ens: &Ensemble) -> Result<Vec<Atom>, CertifiedRejection> {
    solve_par_certified_with(ens).0
}

/// [`solve_par_certified`] returning the run's [`c1p_core::SolveStats`];
/// the parallel driver's phase timings are summed CPU time across
/// branches, so they may exceed the solve's wall time.
pub fn solve_par_certified_with(
    ens: &Ensemble,
) -> (Result<Vec<Atom>, CertifiedRejection>, c1p_core::SolveStats) {
    let (res, stats) = c1p_core::parallel::solve_par(ens);
    (res.map_err(|rejection| certify_rejection(ens, rejection)), stats)
}

/// Upgrades a bare solver [`Rejection`] into a [`CertifiedRejection`] by
/// extracting its Tucker witness against `ens` — the exact step
/// [`solve_certified`] performs, exposed so callers that obtain rejections
/// through other drivers (the incremental solver's per-component
/// re-solves) certify them identically, byte for byte.
///
/// # Panics
///
/// If the evidence does not shrink to a Tucker witness — possible only
/// when `rejection` does not actually implicate a non-C1P subensemble of
/// `ens` (see [`solve_certified`]).
pub fn certify_rejection(ens: &Ensemble, rejection: Rejection) -> CertifiedRejection {
    let witness = extract_witness(ens, &rejection)
        .expect("internal error: rejection evidence did not shrink to a Tucker witness");
    CertifiedRejection { rejection, witness }
}

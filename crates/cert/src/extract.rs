//! The evidence → witness shrink pipeline.
//!
//! A [`Rejection`] leaves the solver naming a set of atoms whose induced
//! subensemble is already non-C1P. This module shrinks that evidence to a
//! *minimal* non-C1P submatrix — minimal under deletion of any single
//! column or atom — which, by Tucker's theorem, is isomorphic to one of
//! the five obstruction families, and wraps it into a [`TuckerWitness`].
//!
//! The shrink is QuickXplain-style divide-and-conquer deletion (the
//! delta-debugging analogue of the greedy passes in Chauve–Stephen–Tamayo
//! / Maňuch–Rafiey): columns first, then atoms, alternating to a fixpoint,
//! with the Booth–Lueker PQ-tree (`c1p_pqtree::solve`) as the incremental
//! non-C1P oracle — `O(w log m)`-ish oracle calls for a witness of `w`
//! positions instead of the naive `m + n`. The oracle is *only* a search
//! heuristic here: [`verify_witness`](crate::verify_witness) re-checks the
//! final witness without it.

use crate::witness::{submatrix, CertError, TuckerWitness};
use c1p_core::{FlatCols, Rejection};
use c1p_matrix::tucker::classify;
use c1p_matrix::{Atom, Ensemble};

/// Extracts a minimal Tucker witness from a rejection's evidence atoms.
///
/// The evidence is first re-validated against the PQ oracle (falling back
/// to the full atom set if a stale/foreign rejection names a realizable
/// subensemble), then shrunk column-minimal and atom-minimal.
///
/// Errors: [`CertError::EvidenceNotRejectable`] if even the full input is
/// C1P (the rejection does not belong to this ensemble);
/// [`CertError::Unrecognized`] if the minimal submatrix classifies into no
/// family (impossible for a sound oracle, by Tucker's theorem).
pub fn extract_witness(ens: &Ensemble, rej: &Rejection) -> Result<TuckerWitness, CertError> {
    let n = ens.n_atoms();
    let mut oracle = Oracle::new(ens);
    let all_cols: Vec<u32> = (0..ens.n_columns() as u32).collect();
    let mut atoms: Vec<Atom> = rej.atoms.iter().copied().filter(|&a| (a as usize) < n).collect();
    atoms.sort_unstable();
    atoms.dedup();
    if atoms.is_empty() {
        atoms = (0..n as Atom).collect();
    }
    // Validation and first narrowing in one incremental Booth–Lueker
    // pass: reductions are processed column by column, so the moment
    // one fails, the set processed so far is already non-C1P and every
    // unprocessed column can be dropped before any probing starts. The
    // pass walks the columns *interleaved from both ends* (0, m−1, 1,
    // m−2, …): obstruction columns near either end — e.g. appended
    // after a consistent base, the common incremental-data shape — are
    // reached after O(core + distance-to-nearer-end) reductions instead
    // of a full O(p) scan, and the worst case (a core buried mid-list)
    // stays one full pass. `None` means the evidence restriction is
    // realizable (a stale/foreign rejection): fall back to the full
    // atom set, as before.
    let mut cols: Vec<u32> = oracle.alive_cols(&atoms, &all_cols);
    match oracle.failing_subset(&atoms, &cols) {
        Some(kept) => cols = kept,
        None => {
            atoms = (0..n as Atom).collect();
            cols = oracle.alive_cols(&atoms, &all_cols);
            let Some(kept) = oracle.failing_subset(&atoms, &cols) else {
                return Err(CertError::EvidenceNotRejectable);
            };
            cols = kept;
        }
    }
    // atoms uncovered by the surviving columns are all-zero rows of the
    // evidence submatrix: they cannot appear in any minimal core
    let mut covered = vec![false; n];
    for &ci in &cols {
        for &a in ens.column(ci as usize) {
            covered[a as usize] = true;
        }
    }
    atoms.retain(|&a| covered[a as usize]);
    // Cheap pre-narrowing: when the evidence is wide (a top-level merge
    // failure implicates a whole component), repeatedly try to keep one
    // half of the atom range — O(log n) oracle calls of shrinking size vs
    // QuickXplain's full-width probes. Best-effort: the moment neither
    // half alone is non-C1P, the minimal-core search takes over. The
    // live column set shrinks with the window (a column with < 2 atoms
    // in the window constrains nothing in any subwindow), so the probe
    // cost decays geometrically instead of paying O(p) per level.
    cols = oracle.alive_cols(&atoms, &cols);
    while atoms.len() > 8 {
        let mid = atoms.len() / 2;
        if oracle.non_c1p(&atoms[..mid], &cols) {
            atoms.truncate(mid);
        } else if oracle.non_c1p(&atoms[mid..], &cols) {
            atoms.drain(..mid);
        } else {
            break;
        }
        cols = oracle.alive_cols(&atoms, &cols);
    }
    // alternate column- and atom-minimization to a fixpoint (each pass can
    // unlock the other; two or three rounds in practice)
    loop {
        let cols_before = cols.len();
        let atoms_before = atoms.len();
        cols = min_core(cols, &mut |cs| oracle.non_c1p(&atoms, cs));
        // only atoms still covered by the kept columns can matter
        let mut covered = vec![false; n];
        for &ci in &cols {
            for &a in ens.column(ci as usize) {
                covered[a as usize] = true;
            }
        }
        atoms.retain(|&a| covered[a as usize]);
        atoms = min_core(atoms, &mut |ats| oracle.non_c1p(ats, &cols));
        atoms.sort_unstable();
        cols.sort_unstable();
        if cols.len() == cols_before && atoms.len() == atoms_before {
            break;
        }
    }
    let sub = submatrix(ens, &atoms, &cols)?;
    let family = classify(&sub).ok_or(CertError::Unrecognized)?;
    Ok(TuckerWitness { family, atom_rows: atoms, column_ids: cols })
}

/// The shrink oracle: is the restriction of `ens` to `atoms × cols`
/// non-C1P? Decided by the Booth–Lueker PQ-tree.
///
/// One `Oracle` serves every probe of an extraction: the renumbering
/// table, the sorted-subset buffer, and the restricted-column CSR arena
/// are built once and recycled, so a probe allocates nothing beyond the
/// PQ-tree itself (the bisection + QuickXplain passes previously paid a
/// fresh `Vec<Vec<Atom>>` — one heap column *plus a sort* per restricted
/// column — on every call).
struct Oracle<'e> {
    ens: &'e Ensemble,
    /// Subset renumbering (`u32::MAX` = atom absent from the probe).
    place: Vec<u32>,
    /// Sorted copy of the probe's atom subset (probes hand unsorted
    /// slices; renumbering by ascending atom keeps the arena's columns
    /// ascending — any bijection preserves the C1P verdict).
    sorted: Vec<Atom>,
    /// Restricted columns, rebuilt in place each probe.
    arena: FlatCols,
}

impl<'e> Oracle<'e> {
    fn new(ens: &'e Ensemble) -> Oracle<'e> {
        Oracle {
            ens,
            place: vec![u32::MAX; ens.n_atoms()],
            sorted: Vec::new(),
            arena: FlatCols::new(),
        }
    }

    /// Publishes the subset renumbering (`place[a]` = rank of `a` in
    /// the sorted subset) for the duration of one probe. Every user
    /// must pair this with [`Self::clear_subset`] — the pairing is kept
    /// in exactly three short methods so a missed restore cannot hide.
    fn mark_subset(&mut self, atoms: &[Atom]) {
        self.sorted.clear();
        self.sorted.extend_from_slice(atoms);
        self.sorted.sort_unstable();
        for (i, &a) in self.sorted.iter().enumerate() {
            self.place[a as usize] = i as u32;
        }
    }

    /// Restores the `place` table to all-absent (`O(subset)`).
    fn clear_subset(&mut self) {
        for &a in &self.sorted {
            self.place[a as usize] = u32::MAX;
        }
    }

    fn non_c1p(&mut self, atoms: &[Atom], cols: &[u32]) -> bool {
        self.mark_subset(atoms);
        self.arena.clear();
        for &ci in cols {
            for &a in self.ens.column(ci as usize) {
                let p = self.place[a as usize];
                if p != u32::MAX {
                    self.arena.push(p);
                }
            }
            // restrictions below two atoms constrain nothing
            if self.arena.building_len() >= 2 {
                self.arena.finish_col();
            } else {
                self.arena.cancel_col();
            }
        }
        let verdict = c1p_pqtree::solve(atoms.len(), &self.arena).is_none();
        self.clear_subset();
        verdict
    }

    /// One incremental Booth–Lueker pass: reduces `cols` against a
    /// fresh PQ-tree over `atoms`, walking the list interleaved from
    /// both ends, and returns the processed column ids (ascending) the
    /// moment a reduction fails — that subset's restriction to `atoms`
    /// is non-C1P. `None`: every column reduced, the restriction is
    /// C1P.
    fn failing_subset(&mut self, atoms: &[Atom], cols: &[u32]) -> Option<Vec<u32>> {
        self.mark_subset(atoms);
        let m = cols.len();
        let mut tree = c1p_pqtree::PqTree::universal(atoms.len());
        let mut buf: Vec<u32> = Vec::new();
        let mut kept = None;
        for k in 0..m {
            let idx = if k % 2 == 0 { k / 2 } else { m - 1 - k / 2 };
            buf.clear();
            for &a in self.ens.column(cols[idx] as usize) {
                let p = self.place[a as usize];
                if p != u32::MAX {
                    buf.push(p);
                }
            }
            if buf.len() >= 2 && tree.reduce(&buf).is_err() {
                let mut processed: Vec<u32> = (0..=k)
                    .map(|kk| cols[if kk % 2 == 0 { kk / 2 } else { m - 1 - kk / 2 }])
                    .collect();
                processed.sort_unstable();
                kept = Some(processed);
                break;
            }
        }
        self.clear_subset();
        kept
    }

    /// The columns of `cols` whose restriction to `atoms` keeps at
    /// least two atoms — everything else constrains nothing in any
    /// subset of `atoms` and only pads later probes.
    fn alive_cols(&mut self, atoms: &[Atom], cols: &[u32]) -> Vec<u32> {
        self.mark_subset(atoms);
        let (place, ens) = (&self.place, self.ens);
        let out = cols
            .iter()
            .copied()
            .filter(|&ci| {
                let mut kept = 0usize;
                for &a in ens.column(ci as usize) {
                    if place[a as usize] != u32::MAX {
                        kept += 1;
                        if kept == 2 {
                            return true;
                        }
                    }
                }
                false
            })
            .collect();
        self.clear_subset();
        out
    }
}

/// QuickXplain: an inclusion-minimal subset `M ⊆ cand` with `test(M)`
/// true, assuming `test(cand)` is true and `test` is monotone (adding
/// items never turns a passing set failing — non-C1P survives supersets).
/// Every element of the result is necessary: removing any single one makes
/// `test` false.
fn min_core(cand: Vec<u32>, test: &mut dyn FnMut(&[u32]) -> bool) -> Vec<u32> {
    fn qx(
        base: &mut Vec<u32>,
        cand: &[u32],
        has_delta: bool,
        test: &mut dyn FnMut(&[u32]) -> bool,
    ) -> Vec<u32> {
        if has_delta && test(base) {
            return Vec::new();
        }
        if cand.len() == 1 {
            return cand.to_vec();
        }
        let (c1, c2) = cand.split_at(cand.len() / 2);
        let mark = base.len();
        base.extend_from_slice(c1);
        let d2 = qx(base, c2, !c1.is_empty(), test);
        base.truncate(mark);
        base.extend_from_slice(&d2);
        let d1 = qx(base, c1, !d2.is_empty(), test);
        base.truncate(mark);
        let mut out = d1;
        out.extend(d2);
        out
    }
    if cand.is_empty() || test(&[]) {
        return Vec::new();
    }
    let mut base = Vec::with_capacity(cand.len());
    qx(&mut base, &cand, false, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_witness;
    use c1p_matrix::tucker::{self, TuckerFamily};

    #[test]
    fn min_core_finds_planted_core() {
        // test: does the set contain {3, 7, 11}?
        let need = [3u32, 7, 11];
        let mut test = |xs: &[u32]| need.iter().all(|x| xs.contains(x));
        let mut got = min_core((0..40).collect(), &mut test);
        got.sort_unstable();
        assert_eq!(got, need);
    }

    #[test]
    fn extracts_the_generator_from_pure_obstructions() {
        for (name, ens) in tucker::small_obstructions() {
            let rej = c1p_core::solve(&ens).expect_err(&name);
            let w = extract_witness(&ens, &rej).unwrap_or_else(|e| panic!("{name}: {e}"));
            // generators are already minimal: the witness is the whole
            // matrix, and the family matches the planted one
            assert_eq!(w.atom_rows.len(), ens.n_atoms(), "{name}");
            assert_eq!(w.column_ids.len(), ens.n_columns(), "{name}");
            assert_eq!(classify(&ens), Some(w.family), "{name}");
            verify_witness(&ens, &w).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn extracts_from_embedded_obstruction() {
        let emb = tucker::embed_obstruction(&tucker::m_v(), 40, 17, &[(0, 12), (20, 15), (5, 30)]);
        let rej = c1p_core::solve(&emb).unwrap_err();
        let w = extract_witness(&emb, &rej).unwrap();
        verify_witness(&emb, &w).unwrap();
        assert_eq!(w.family, TuckerFamily::MV);
        // the witness found exactly the embedded copy's atoms
        assert_eq!(w.atom_rows, (17..22).collect::<Vec<_>>());
    }

    #[test]
    fn stale_rejection_on_c1p_input_is_an_error() {
        let good =
            Ensemble::from_sorted_columns(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4]]).unwrap();
        let fake = Rejection { site: c1p_core::RejectSite::Merge, atoms: vec![0, 1, 2, 3, 4] };
        assert_eq!(extract_witness(&good, &fake), Err(CertError::EvidenceNotRejectable));
    }
}

//! The evidence → witness shrink pipeline.
//!
//! A [`Rejection`] leaves the solver naming a set of atoms whose induced
//! subensemble is already non-C1P. This module shrinks that evidence to a
//! *minimal* non-C1P submatrix — minimal under deletion of any single
//! column or atom — which, by Tucker's theorem, is isomorphic to one of
//! the five obstruction families, and wraps it into a [`TuckerWitness`].
//!
//! The shrink is QuickXplain-style divide-and-conquer deletion (the
//! delta-debugging analogue of the greedy passes in Chauve–Stephen–Tamayo
//! / Maňuch–Rafiey): columns first, then atoms, alternating to a fixpoint,
//! with the Booth–Lueker PQ-tree (`c1p_pqtree::solve`) as the incremental
//! non-C1P oracle — `O(w log m)`-ish oracle calls for a witness of `w`
//! positions instead of the naive `m + n`. The oracle is *only* a search
//! heuristic here: [`verify_witness`](crate::verify_witness) re-checks the
//! final witness without it.

use crate::witness::{submatrix, CertError, TuckerWitness};
use c1p_core::bitmat::{compact, ones};
use c1p_core::{FlatCols, Rejection};
use c1p_matrix::tucker::classify;
use c1p_matrix::{Atom, Ensemble};

/// Extracts a minimal Tucker witness from a rejection's evidence atoms.
///
/// The evidence is first re-validated against the PQ oracle (falling back
/// to the full atom set if a stale/foreign rejection names a realizable
/// subensemble), then shrunk column-minimal and atom-minimal.
///
/// Errors: [`CertError::EvidenceNotRejectable`] if even the full input is
/// C1P (the rejection does not belong to this ensemble);
/// [`CertError::Unrecognized`] if the minimal submatrix classifies into no
/// family (impossible for a sound oracle, by Tucker's theorem).
pub fn extract_witness(ens: &Ensemble, rej: &Rejection) -> Result<TuckerWitness, CertError> {
    let n = ens.n_atoms();
    let mut oracle = Oracle::new(ens);
    let all_cols: Vec<u32> = (0..ens.n_columns() as u32).collect();
    let mut atoms: Vec<Atom> = rej.atoms.iter().copied().filter(|&a| (a as usize) < n).collect();
    atoms.sort_unstable();
    atoms.dedup();
    if atoms.is_empty() {
        atoms = (0..n as Atom).collect();
    }
    // Validation and first narrowing in one incremental Booth–Lueker
    // pass: reductions are processed column by column, so the moment
    // one fails, the set processed so far is already non-C1P and every
    // unprocessed column can be dropped before any probing starts. The
    // pass walks the columns *interleaved from both ends* (0, m−1, 1,
    // m−2, …): obstruction columns near either end — e.g. appended
    // after a consistent base, the common incremental-data shape — are
    // reached after O(core + distance-to-nearer-end) reductions instead
    // of a full O(p) scan, and the worst case (a core buried mid-list)
    // stays one full pass. `None` means the evidence restriction is
    // realizable (a stale/foreign rejection): fall back to the full
    // atom set, as before.
    let mut cols: Vec<u32> = oracle.alive_cols(&atoms, &all_cols);
    match oracle.failing_subset(&atoms, &cols) {
        Some(kept) => cols = kept,
        None => {
            atoms = (0..n as Atom).collect();
            cols = oracle.alive_cols(&atoms, &all_cols);
            let Some(kept) = oracle.failing_subset(&atoms, &cols) else {
                return Err(CertError::EvidenceNotRejectable);
            };
            cols = kept;
        }
    }
    // atoms uncovered by the surviving columns are all-zero rows of the
    // evidence submatrix: they cannot appear in any minimal core
    let mut covered = vec![false; n];
    for &ci in &cols {
        for &a in ens.column(ci as usize) {
            covered[a as usize] = true;
        }
    }
    atoms.retain(|&a| covered[a as usize]);
    // Cheap pre-narrowing: when the evidence is wide (a top-level merge
    // failure implicates a whole component), repeatedly try to keep one
    // half of the atom range — O(log n) oracle calls of shrinking size vs
    // QuickXplain's full-width probes. Best-effort: the moment neither
    // half alone is non-C1P, the minimal-core search takes over. The
    // live column set shrinks with the window (a column with < 2 atoms
    // in the window constrains nothing in any subwindow), so the probe
    // cost decays geometrically instead of paying O(p) per level.
    cols = oracle.alive_cols(&atoms, &cols);
    oracle.focus(&atoms, &cols);
    while atoms.len() > 8 {
        let mid = atoms.len() / 2;
        if oracle.non_c1p(&atoms[..mid], &cols) {
            atoms.truncate(mid);
        } else if oracle.non_c1p(&atoms[mid..], &cols) {
            atoms.drain(..mid);
        } else {
            break;
        }
        cols = oracle.alive_cols(&atoms, &cols);
        oracle.focus(&atoms, &cols);
    }
    // alternate column- and atom-minimization to a fixpoint (each pass can
    // unlock the other; two or three rounds in practice)
    loop {
        let cols_before = cols.len();
        let atoms_before = atoms.len();
        // refocus each round: the window shrinks with the core, so every
        // QuickXplain probe below runs on the packed rows
        oracle.focus(&atoms, &cols);
        cols = min_core(cols, &mut |cs| oracle.non_c1p(&atoms, cs));
        // only atoms still covered by the kept columns can matter
        let mut covered = vec![false; n];
        for &ci in &cols {
            for &a in ens.column(ci as usize) {
                covered[a as usize] = true;
            }
        }
        atoms.retain(|&a| covered[a as usize]);
        atoms = min_core(atoms, &mut |ats| oracle.non_c1p(ats, &cols));
        atoms.sort_unstable();
        cols.sort_unstable();
        if cols.len() == cols_before && atoms.len() == atoms_before {
            break;
        }
    }
    let sub = submatrix(ens, &atoms, &cols)?;
    let family = classify(&sub).ok_or(CertError::Unrecognized)?;
    Ok(TuckerWitness { family, atom_rows: atoms, column_ids: cols })
}

/// Cap on the bit window's row storage, in `u64` words (~8 MB). Windows
/// that would exceed it stay scalar — the window is a kernel swap, never
/// a verdict change, so the gate only affects speed.
const WINDOW_WORD_CAP: usize = 1 << 20;

/// The shrink oracle: is the restriction of `ens` to `atoms × cols`
/// non-C1P? Decided by the Booth–Lueker PQ-tree.
///
/// One `Oracle` serves every probe of an extraction: the renumbering
/// table, the sorted-subset buffer, and the restricted-column CSR arena
/// are built once and recycled, so a probe allocates nothing beyond the
/// PQ-tree itself (the bisection + QuickXplain passes previously paid a
/// fresh `Vec<Vec<Atom>>` — one heap column *plus a sort* per restricted
/// column — on every call).
///
/// Probes additionally run word-parallel when a **bit window** is focused
/// ([`Oracle::focus`], DESIGN.md §14): the restriction of every live
/// column to the current atom set is packed into `u64` rows, so a probe's
/// per-column work is an AND/popcount over a handful of words — and the
/// probe-subset renumbering is a parallel bit extract
/// ([`c1p_core::bitmat::compact`]) — instead of one `place` lookup per
/// entry. Probes not covered by the window (or too large for the cap)
/// take the scalar path; both produce the same arena bit-for-bit.
struct Oracle<'e> {
    ens: &'e Ensemble,
    /// Subset renumbering (`u32::MAX` = atom absent from the probe).
    place: Vec<u32>,
    /// Sorted copy of the probe's atom subset (probes hand unsorted
    /// slices; renumbering by ascending atom keeps the arena's columns
    /// ascending — any bijection preserves the C1P verdict).
    sorted: Vec<Atom>,
    /// Restricted columns, rebuilt in place each probe.
    arena: FlatCols,
    /// Bit window: sorted atom set the rows are packed over (empty =
    /// no window focused).
    watoms: Vec<Atom>,
    /// Global column ids of the window's rows, ascending.
    wcols: Vec<u32>,
    /// Global atom → window rank (`u32::MAX` = outside the window).
    wrank: Vec<u32>,
    /// Words per window row.
    wwidth: usize,
    /// Packed rows, `wwidth` words per window column.
    wrows: Vec<u64>,
    /// Probe scratch: subset mask and extracted row (reused, no per-probe
    /// allocation).
    wmask: Vec<u64>,
    wext: Vec<u64>,
}

impl<'e> Oracle<'e> {
    fn new(ens: &'e Ensemble) -> Oracle<'e> {
        Oracle {
            ens,
            place: vec![u32::MAX; ens.n_atoms()],
            sorted: Vec::new(),
            arena: FlatCols::new(),
            watoms: Vec::new(),
            wcols: Vec::new(),
            wrank: vec![u32::MAX; ens.n_atoms()],
            wwidth: 0,
            wrows: Vec::new(),
            wmask: Vec::new(),
            wext: Vec::new(),
        }
    }

    /// Focuses the bit window on `atoms × cols` (both sorted ascending):
    /// subsequent probes whose subsets stay inside it run word-parallel.
    /// Called at the pipeline's narrowing points; oversized windows are
    /// skipped (probes fall back to scalar, same verdicts).
    fn focus(&mut self, atoms: &[Atom], cols: &[u32]) {
        for &a in &self.watoms {
            self.wrank[a as usize] = u32::MAX;
        }
        self.watoms.clear();
        self.wcols.clear();
        self.wrows.clear();
        let width = atoms.len().div_ceil(64);
        if atoms.is_empty() || cols.len().saturating_mul(width) > WINDOW_WORD_CAP {
            self.wwidth = 0;
            return;
        }
        debug_assert!(atoms.windows(2).all(|w| w[0] < w[1]), "window atoms sorted");
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "window cols sorted");
        self.watoms.extend_from_slice(atoms);
        self.wcols.extend_from_slice(cols);
        self.wwidth = width;
        for (i, &a) in atoms.iter().enumerate() {
            self.wrank[a as usize] = i as u32;
        }
        self.wrows.resize(cols.len() * width, 0);
        for (i, &ci) in cols.iter().enumerate() {
            let row = &mut self.wrows[i * width..(i + 1) * width];
            for &a in self.ens.column(ci as usize) {
                let r = self.wrank[a as usize];
                if r != u32::MAX {
                    row[(r >> 6) as usize] |= 1u64 << (r & 63);
                }
            }
        }
    }

    /// Is every probe atom inside the window and every probe column one
    /// of its rows? (`O(probe)` membership checks.)
    fn window_covers(&self, atoms: &[Atom], cols: &[u32]) -> bool {
        self.wwidth > 0
            && atoms.iter().all(|&a| self.wrank[a as usize] != u32::MAX)
            && cols.iter().all(|&ci| self.wcols.binary_search(&ci).is_ok())
    }

    /// Builds the probe-subset mask over window ranks into `wmask`.
    fn build_mask(&mut self, atoms: &[Atom]) {
        self.wmask.clear();
        self.wmask.resize(self.wwidth, 0);
        for &a in atoms {
            let r = self.wrank[a as usize];
            self.wmask[(r >> 6) as usize] |= 1u64 << (r & 63);
        }
    }

    /// Publishes the subset renumbering (`place[a]` = rank of `a` in
    /// the sorted subset) for the duration of one probe. Every user
    /// must pair this with [`Self::clear_subset`] — the pairing is kept
    /// in exactly three short methods so a missed restore cannot hide.
    fn mark_subset(&mut self, atoms: &[Atom]) {
        self.sorted.clear();
        self.sorted.extend_from_slice(atoms);
        self.sorted.sort_unstable();
        for (i, &a) in self.sorted.iter().enumerate() {
            self.place[a as usize] = i as u32;
        }
    }

    /// Restores the `place` table to all-absent (`O(subset)`).
    fn clear_subset(&mut self) {
        for &a in &self.sorted {
            self.place[a as usize] = u32::MAX;
        }
    }

    fn non_c1p(&mut self, atoms: &[Atom], cols: &[u32]) -> bool {
        if self.window_covers(atoms, cols) {
            self.build_mask(atoms);
            self.arena.clear();
            let pw = atoms.len().div_ceil(64);
            for &ci in cols {
                let i = self.wcols.binary_search(&ci).expect("covered column");
                let row = &self.wrows[i * self.wwidth..(i + 1) * self.wwidth];
                let kept: u32 =
                    row.iter().zip(&self.wmask).map(|(w, m)| (w & m).count_ones()).sum();
                // restrictions below two atoms constrain nothing
                if kept >= 2 {
                    self.wext.clear();
                    self.wext.resize(pw, 0);
                    compact(&mut self.wext, row, &self.wmask);
                    for p in ones(&self.wext) {
                        self.arena.push(p);
                    }
                    self.arena.finish_col();
                }
            }
            return c1p_pqtree::solve(atoms.len(), &self.arena).is_none();
        }
        self.mark_subset(atoms);
        self.arena.clear();
        for &ci in cols {
            for &a in self.ens.column(ci as usize) {
                let p = self.place[a as usize];
                if p != u32::MAX {
                    self.arena.push(p);
                }
            }
            // restrictions below two atoms constrain nothing
            if self.arena.building_len() >= 2 {
                self.arena.finish_col();
            } else {
                self.arena.cancel_col();
            }
        }
        let verdict = c1p_pqtree::solve(atoms.len(), &self.arena).is_none();
        self.clear_subset();
        verdict
    }

    /// One incremental Booth–Lueker pass: reduces `cols` against a
    /// fresh PQ-tree over `atoms`, walking the list interleaved from
    /// both ends, and returns the processed column ids (ascending) the
    /// moment a reduction fails — that subset's restriction to `atoms`
    /// is non-C1P. `None`: every column reduced, the restriction is
    /// C1P.
    fn failing_subset(&mut self, atoms: &[Atom], cols: &[u32]) -> Option<Vec<u32>> {
        if self.window_covers(atoms, cols) {
            return self.failing_subset_bits(atoms, cols);
        }
        self.mark_subset(atoms);
        let m = cols.len();
        let mut tree = c1p_pqtree::PqTree::universal(atoms.len());
        let mut buf: Vec<u32> = Vec::new();
        let mut kept = None;
        for k in 0..m {
            let idx = if k % 2 == 0 { k / 2 } else { m - 1 - k / 2 };
            buf.clear();
            for &a in self.ens.column(cols[idx] as usize) {
                let p = self.place[a as usize];
                if p != u32::MAX {
                    buf.push(p);
                }
            }
            if buf.len() >= 2 && tree.reduce(&buf).is_err() {
                let mut processed: Vec<u32> = (0..=k)
                    .map(|kk| cols[if kk % 2 == 0 { kk / 2 } else { m - 1 - kk / 2 }])
                    .collect();
                processed.sort_unstable();
                kept = Some(processed);
                break;
            }
        }
        self.clear_subset();
        kept
    }

    /// [`Self::failing_subset`], word-parallel: same interleaved walk and
    /// reduce inputs, restriction by bit extract over the window rows.
    fn failing_subset_bits(&mut self, atoms: &[Atom], cols: &[u32]) -> Option<Vec<u32>> {
        self.build_mask(atoms);
        let m = cols.len();
        let pw = atoms.len().div_ceil(64);
        let mut tree = c1p_pqtree::PqTree::universal(atoms.len());
        let mut buf: Vec<u32> = Vec::new();
        for k in 0..m {
            let idx = if k % 2 == 0 { k / 2 } else { m - 1 - k / 2 };
            let i = self.wcols.binary_search(&cols[idx]).expect("covered column");
            let row = &self.wrows[i * self.wwidth..(i + 1) * self.wwidth];
            self.wext.clear();
            self.wext.resize(pw, 0);
            compact(&mut self.wext, row, &self.wmask);
            buf.clear();
            buf.extend(ones(&self.wext));
            if buf.len() >= 2 && tree.reduce(&buf).is_err() {
                let mut processed: Vec<u32> = (0..=k)
                    .map(|kk| cols[if kk % 2 == 0 { kk / 2 } else { m - 1 - kk / 2 }])
                    .collect();
                processed.sort_unstable();
                return Some(processed);
            }
        }
        None
    }

    /// The columns of `cols` whose restriction to `atoms` keeps at
    /// least two atoms — everything else constrains nothing in any
    /// subset of `atoms` and only pads later probes.
    fn alive_cols(&mut self, atoms: &[Atom], cols: &[u32]) -> Vec<u32> {
        if self.window_covers(atoms, cols) {
            self.build_mask(atoms);
            let (wcols, wrows, wmask, ww) = (&self.wcols, &self.wrows, &self.wmask, self.wwidth);
            return cols
                .iter()
                .copied()
                .filter(|&ci| {
                    let i = wcols.binary_search(&ci).expect("covered column");
                    let row = &wrows[i * ww..(i + 1) * ww];
                    let mut kept = 0u32;
                    for (w, m) in row.iter().zip(wmask) {
                        kept += (w & m).count_ones();
                        if kept >= 2 {
                            return true;
                        }
                    }
                    false
                })
                .collect();
        }
        self.mark_subset(atoms);
        let (place, ens) = (&self.place, self.ens);
        let out = cols
            .iter()
            .copied()
            .filter(|&ci| {
                let mut kept = 0usize;
                for &a in ens.column(ci as usize) {
                    if place[a as usize] != u32::MAX {
                        kept += 1;
                        if kept == 2 {
                            return true;
                        }
                    }
                }
                false
            })
            .collect();
        self.clear_subset();
        out
    }
}

/// QuickXplain: an inclusion-minimal subset `M ⊆ cand` with `test(M)`
/// true, assuming `test(cand)` is true and `test` is monotone (adding
/// items never turns a passing set failing — non-C1P survives supersets).
/// Every element of the result is necessary: removing any single one makes
/// `test` false.
fn min_core(cand: Vec<u32>, test: &mut dyn FnMut(&[u32]) -> bool) -> Vec<u32> {
    fn qx(
        base: &mut Vec<u32>,
        cand: &[u32],
        has_delta: bool,
        test: &mut dyn FnMut(&[u32]) -> bool,
    ) -> Vec<u32> {
        if has_delta && test(base) {
            return Vec::new();
        }
        if cand.len() == 1 {
            return cand.to_vec();
        }
        let (c1, c2) = cand.split_at(cand.len() / 2);
        let mark = base.len();
        base.extend_from_slice(c1);
        let d2 = qx(base, c2, !c1.is_empty(), test);
        base.truncate(mark);
        base.extend_from_slice(&d2);
        let d1 = qx(base, c1, !d2.is_empty(), test);
        base.truncate(mark);
        let mut out = d1;
        out.extend(d2);
        out
    }
    if cand.is_empty() || test(&[]) {
        return Vec::new();
    }
    let mut base = Vec::with_capacity(cand.len());
    qx(&mut base, &cand, false, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_witness;
    use c1p_matrix::tucker::{self, TuckerFamily};

    #[test]
    fn min_core_finds_planted_core() {
        // test: does the set contain {3, 7, 11}?
        let need = [3u32, 7, 11];
        let mut test = |xs: &[u32]| need.iter().all(|x| xs.contains(x));
        let mut got = min_core((0..40).collect(), &mut test);
        got.sort_unstable();
        assert_eq!(got, need);
    }

    #[test]
    fn extracts_the_generator_from_pure_obstructions() {
        for (name, ens) in tucker::small_obstructions() {
            let rej = c1p_core::solve(&ens).expect_err(&name);
            let w = extract_witness(&ens, &rej).unwrap_or_else(|e| panic!("{name}: {e}"));
            // generators are already minimal: the witness is the whole
            // matrix, and the family matches the planted one
            assert_eq!(w.atom_rows.len(), ens.n_atoms(), "{name}");
            assert_eq!(w.column_ids.len(), ens.n_columns(), "{name}");
            assert_eq!(classify(&ens), Some(w.family), "{name}");
            verify_witness(&ens, &w).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn extracts_from_embedded_obstruction() {
        let emb = tucker::embed_obstruction(&tucker::m_v(), 40, 17, &[(0, 12), (20, 15), (5, 30)]);
        let rej = c1p_core::solve(&emb).unwrap_err();
        let w = extract_witness(&emb, &rej).unwrap();
        verify_witness(&emb, &w).unwrap();
        assert_eq!(w.family, TuckerFamily::MV);
        // the witness found exactly the embedded copy's atoms
        assert_eq!(w.atom_rows, (17..22).collect::<Vec<_>>());
    }

    /// Every window probe must agree with its scalar twin on verdicts
    /// *and* on exact outputs (kept column lists, failing prefixes) —
    /// the window is a kernel swap, not an approximation.
    #[test]
    fn window_probes_match_scalar() {
        let emb = tucker::embed_obstruction(&tucker::m_iv(), 90, 31, &[(2, 7), (40, 3), (11, 60)]);
        let n = emb.n_atoms();
        let all_cols: Vec<u32> = (0..emb.n_columns() as u32).collect();
        // deterministic pseudo-random atom subsets of varying density
        let subsets: Vec<Vec<Atom>> = [(3u64, 1usize), (5, 2), (7, 3), (11, 1)]
            .iter()
            .map(|&(mul, keep)| {
                (0..n as Atom).filter(|&a| (a as u64).wrapping_mul(mul) % 4 < keep as u64).collect()
            })
            .chain([(0..n as Atom).collect(), vec![31, 32, 33, 34, 35, 36]])
            .collect();
        let mut bit = Oracle::new(&emb);
        let mut sca = Oracle::new(&emb);
        for atoms in &subsets {
            let cols = sca.alive_cols(atoms, &all_cols);
            bit.focus(atoms, &cols);
            assert!(bit.window_covers(atoms, &cols), "window must engage on these sizes");
            assert_eq!(bit.alive_cols(atoms, &cols), sca.alive_cols(atoms, &cols));
            assert_eq!(bit.failing_subset(atoms, &cols), sca.failing_subset(atoms, &cols));
            assert_eq!(bit.non_c1p(atoms, &cols), sca.non_c1p(atoms, &cols));
            // sub-probes inside the window: half the atoms, half the cols
            let half_a = &atoms[..atoms.len() / 2];
            let half_c: Vec<u32> = cols.iter().copied().step_by(2).collect();
            assert_eq!(bit.non_c1p(half_a, &half_c), sca.non_c1p(half_a, &half_c));
            assert_eq!(bit.alive_cols(half_a, &half_c), sca.alive_cols(half_a, &half_c));
            assert_eq!(bit.failing_subset(half_a, &half_c), sca.failing_subset(half_a, &half_c));
        }
        // an unfocused oracle and a probe outside the window fall back to
        // scalar (and still agree, trivially) — covered check is exact
        bit.focus(&[4, 5, 6], &all_cols[..2]);
        assert!(!bit.window_covers(&[4, 5, 7], &all_cols[..2]));
        assert!(!bit.window_covers(&[4, 5], &all_cols[..3]));
        assert_eq!(bit.non_c1p(&[4, 5, 7], &all_cols), sca.non_c1p(&[4, 5, 7], &all_cols));
    }

    #[test]
    fn stale_rejection_on_c1p_input_is_an_error() {
        let good =
            Ensemble::from_sorted_columns(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4]]).unwrap();
        let fake = Rejection { site: c1p_core::RejectSite::Merge, atoms: vec![0, 1, 2, 3, 4] };
        assert_eq!(extract_witness(&good, &fake), Err(CertError::EvidenceNotRejectable));
    }
}

//! The evidence → witness shrink pipeline.
//!
//! A [`Rejection`] leaves the solver naming a set of atoms whose induced
//! subensemble is already non-C1P. This module shrinks that evidence to a
//! *minimal* non-C1P submatrix — minimal under deletion of any single
//! column or atom — which, by Tucker's theorem, is isomorphic to one of
//! the five obstruction families, and wraps it into a [`TuckerWitness`].
//!
//! The shrink is QuickXplain-style divide-and-conquer deletion (the
//! delta-debugging analogue of the greedy passes in Chauve–Stephen–Tamayo
//! / Maňuch–Rafiey): columns first, then atoms, alternating to a fixpoint,
//! with the Booth–Lueker PQ-tree (`c1p_pqtree::solve`) as the incremental
//! non-C1P oracle — `O(w log m)`-ish oracle calls for a witness of `w`
//! positions instead of the naive `m + n`. The oracle is *only* a search
//! heuristic here: [`verify_witness`](crate::verify_witness) re-checks the
//! final witness without it.

use crate::witness::{submatrix, CertError, TuckerWitness};
use c1p_core::Rejection;
use c1p_matrix::tucker::classify;
use c1p_matrix::{Atom, Ensemble};

/// Extracts a minimal Tucker witness from a rejection's evidence atoms.
///
/// The evidence is first re-validated against the PQ oracle (falling back
/// to the full atom set if a stale/foreign rejection names a realizable
/// subensemble), then shrunk column-minimal and atom-minimal.
///
/// Errors: [`CertError::EvidenceNotRejectable`] if even the full input is
/// C1P (the rejection does not belong to this ensemble);
/// [`CertError::Unrecognized`] if the minimal submatrix classifies into no
/// family (impossible for a sound oracle, by Tucker's theorem).
pub fn extract_witness(ens: &Ensemble, rej: &Rejection) -> Result<TuckerWitness, CertError> {
    let n = ens.n_atoms();
    let all_cols: Vec<u32> = (0..ens.n_columns() as u32).collect();
    let mut atoms: Vec<Atom> = rej.atoms.iter().copied().filter(|&a| (a as usize) < n).collect();
    atoms.sort_unstable();
    atoms.dedup();
    if atoms.is_empty() || !non_c1p(ens, &atoms, &all_cols) {
        atoms = (0..n as Atom).collect();
        if !non_c1p(ens, &atoms, &all_cols) {
            return Err(CertError::EvidenceNotRejectable);
        }
    }
    // Cheap pre-narrowing: when the evidence is wide (a top-level merge
    // failure implicates a whole component), repeatedly try to keep one
    // half of the atom range — O(log n) oracle calls of shrinking size vs
    // QuickXplain's full-width probes. Best-effort: the moment neither
    // half alone is non-C1P, the minimal-core search takes over.
    while atoms.len() > 8 {
        let mid = atoms.len() / 2;
        if non_c1p(ens, &atoms[..mid], &all_cols) {
            atoms.truncate(mid);
        } else if non_c1p(ens, &atoms[mid..], &all_cols) {
            atoms.drain(..mid);
        } else {
            break;
        }
    }
    // pre-drop columns that restrict below two atoms: they constrain
    // nothing inside the evidence and only pad the shrink
    let mut cols: Vec<u32> = ens.restrict(&atoms, 2).1;
    // alternate column- and atom-minimization to a fixpoint (each pass can
    // unlock the other; two or three rounds in practice)
    loop {
        let cols_before = cols.len();
        let atoms_before = atoms.len();
        cols = min_core(cols, &|cs| non_c1p(ens, &atoms, cs));
        // only atoms still covered by the kept columns can matter
        let mut covered = vec![false; n];
        for &ci in &cols {
            for &a in ens.column(ci as usize) {
                covered[a as usize] = true;
            }
        }
        atoms.retain(|&a| covered[a as usize]);
        atoms = min_core(atoms, &|ats| non_c1p(ens, ats, &cols));
        atoms.sort_unstable();
        cols.sort_unstable();
        if cols.len() == cols_before && atoms.len() == atoms_before {
            break;
        }
    }
    let sub = submatrix(ens, &atoms, &cols)?;
    let family = classify(&sub).ok_or(CertError::Unrecognized)?;
    Ok(TuckerWitness { family, atom_rows: atoms, column_ids: cols })
}

/// The shrink oracle: is the restriction of `ens` to `atoms × cols`
/// non-C1P? Decided by the Booth–Lueker PQ-tree.
fn non_c1p(ens: &Ensemble, atoms: &[Atom], cols: &[u32]) -> bool {
    c1p_pqtree::solve(atoms.len(), ens.restrict_to(atoms, cols)).is_none()
}

/// QuickXplain: an inclusion-minimal subset `M ⊆ cand` with `test(M)`
/// true, assuming `test(cand)` is true and `test` is monotone (adding
/// items never turns a passing set failing — non-C1P survives supersets).
/// Every element of the result is necessary: removing any single one makes
/// `test` false.
fn min_core(cand: Vec<u32>, test: &dyn Fn(&[u32]) -> bool) -> Vec<u32> {
    fn qx(
        base: &mut Vec<u32>,
        cand: &[u32],
        has_delta: bool,
        test: &dyn Fn(&[u32]) -> bool,
    ) -> Vec<u32> {
        if has_delta && test(base) {
            return Vec::new();
        }
        if cand.len() == 1 {
            return cand.to_vec();
        }
        let (c1, c2) = cand.split_at(cand.len() / 2);
        let mark = base.len();
        base.extend_from_slice(c1);
        let d2 = qx(base, c2, !c1.is_empty(), test);
        base.truncate(mark);
        base.extend_from_slice(&d2);
        let d1 = qx(base, c1, !d2.is_empty(), test);
        base.truncate(mark);
        let mut out = d1;
        out.extend(d2);
        out
    }
    if cand.is_empty() || test(&[]) {
        return Vec::new();
    }
    let mut base = Vec::with_capacity(cand.len());
    qx(&mut base, &cand, false, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_witness;
    use c1p_matrix::tucker::{self, TuckerFamily};

    #[test]
    fn min_core_finds_planted_core() {
        // test: does the set contain {3, 7, 11}?
        let need = [3u32, 7, 11];
        let test = |xs: &[u32]| need.iter().all(|x| xs.contains(x));
        let mut got = min_core((0..40).collect(), &test);
        got.sort_unstable();
        assert_eq!(got, need);
    }

    #[test]
    fn extracts_the_generator_from_pure_obstructions() {
        for (name, ens) in tucker::small_obstructions() {
            let rej = c1p_core::solve(&ens).expect_err(&name);
            let w = extract_witness(&ens, &rej).unwrap_or_else(|e| panic!("{name}: {e}"));
            // generators are already minimal: the witness is the whole
            // matrix, and the family matches the planted one
            assert_eq!(w.atom_rows.len(), ens.n_atoms(), "{name}");
            assert_eq!(w.column_ids.len(), ens.n_columns(), "{name}");
            assert_eq!(classify(&ens), Some(w.family), "{name}");
            verify_witness(&ens, &w).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn extracts_from_embedded_obstruction() {
        let emb = tucker::embed_obstruction(&tucker::m_v(), 40, 17, &[(0, 12), (20, 15), (5, 30)]);
        let rej = c1p_core::solve(&emb).unwrap_err();
        let w = extract_witness(&emb, &rej).unwrap();
        verify_witness(&emb, &w).unwrap();
        assert_eq!(w.family, TuckerFamily::MV);
        // the witness found exactly the embedded copy's atoms
        assert_eq!(w.atom_rows, (17..22).collect::<Vec<_>>());
    }

    #[test]
    fn stale_rejection_on_c1p_input_is_an_error() {
        let good =
            Ensemble::from_sorted_columns(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4]]).unwrap();
        let fake = Rejection { site: c1p_core::RejectSite::Merge, atoms: vec![0, 1, 2, 3, 4] };
        assert_eq!(extract_witness(&good, &fake), Err(CertError::EvidenceNotRejectable));
    }
}

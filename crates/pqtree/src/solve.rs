//! Driving a PQ-tree over a whole column collection: the Booth–Lueker C1P
//! decision procedure plus a witness order (the frontier).

use crate::arena::PqTree;

/// Statistics from a solve run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PqStats {
    /// Columns actually reduced (after skipping trivial ones).
    pub reductions: usize,
    /// Columns skipped as trivial (≤ 1 atom or all atoms).
    pub skipped: usize,
    /// Arena nodes allocated over the run.
    pub nodes_allocated: usize,
}

/// Decides C1P for `columns` over `n_atoms` atoms; returns a witness atom
/// order on success (columns with < 2 atoms constrain nothing).
///
/// Generic over column storage: accepts anything iterating slice-likes —
/// `&[Vec<u32>]`, `&Vec<Vec<u32>>`, or a CSR arena like `c1p-core`'s
/// `FlatCols` — without materializing nested vectors.
pub fn solve<C: AsRef<[u32]>>(
    n_atoms: usize,
    columns: impl IntoIterator<Item = C>,
) -> Option<Vec<u32>> {
    solve_with_stats(n_atoms, columns).0
}

/// [`solve`] plus run statistics.
pub fn solve_with_stats<C: AsRef<[u32]>>(
    n_atoms: usize,
    columns: impl IntoIterator<Item = C>,
) -> (Option<Vec<u32>>, PqStats) {
    let mut stats = PqStats::default();
    if n_atoms == 0 {
        return (Some(Vec::new()), stats);
    }
    let mut tree = PqTree::universal(n_atoms);
    for col in columns {
        let col = col.as_ref();
        if col.len() <= 1 || col.len() >= n_atoms {
            stats.skipped += 1;
            continue;
        }
        stats.reductions += 1;
        if tree.reduce(col).is_err() {
            stats.nodes_allocated = tree.kind.len();
            return (None, stats);
        }
        #[cfg(debug_assertions)]
        tree.validate();
    }
    stats.nodes_allocated = tree.kind.len();
    (Some(tree.frontier()), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(p) certificate check local to this crate (mirrors
    /// `c1p_matrix::verify::verify_linear`, kept dependency-free here).
    fn is_valid(n: usize, columns: &[Vec<u32>], order: &[u32]) -> bool {
        let mut pos = vec![usize::MAX; n];
        if order.len() != n {
            return false;
        }
        for (i, &a) in order.iter().enumerate() {
            pos[a as usize] = i;
        }
        columns.iter().all(|col| {
            if col.len() <= 1 {
                return true;
            }
            let ps: Vec<usize> = col.iter().map(|&a| pos[a as usize]).collect();
            let (lo, hi) = (*ps.iter().min().unwrap(), *ps.iter().max().unwrap());
            hi - lo + 1 == col.len()
        })
    }

    #[test]
    fn solves_interval_instance() {
        let cols = vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![1, 2, 3]];
        let (order, stats) = solve_with_stats(5, &cols);
        let order = order.expect("instance is C1P");
        assert!(is_valid(5, &cols, &order), "order {order:?}");
        assert_eq!(stats.reductions, 4);
    }

    #[test]
    fn rejects_tucker_cycle() {
        let cols = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]];
        assert_eq!(solve(4, &cols), None);
    }

    #[test]
    fn rejects_m_iv() {
        let cols = vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![1, 3, 5]];
        assert_eq!(solve(6, &cols), None);
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(solve(0, &[] as &[Vec<u32>]), Some(vec![]));
        assert_eq!(solve(1, &[vec![0]]), Some(vec![0]));
        let (order, stats) = solve_with_stats(3, &[vec![0, 1, 2], vec![2]]);
        assert!(order.is_some());
        assert_eq!(stats.skipped, 2);
        assert_eq!(stats.reductions, 0);
    }

    #[test]
    fn q_node_chains() {
        // force Q-node creation and repeated Q2/Q3 splices
        let cols = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![4, 5],
            vec![0, 1, 2, 3],
            vec![2, 3, 4, 5],
        ];
        let order = solve(6, &cols).expect("chain is C1P");
        assert!(is_valid(6, &cols, &order));
    }

    #[test]
    fn partial_merge_p6() {
        // two partial blocks meeting at the root
        let cols = vec![
            vec![0, 1, 2],
            vec![4, 5, 6],
            vec![2, 3, 4], // bridges the two partial sides at the root
            vec![1, 2],
            vec![4, 5],
        ];
        let order = solve(7, &cols).expect("is C1P");
        assert!(is_valid(7, &cols, &order));
    }
}

//! Driving a PQ-tree over a whole column collection: the Booth–Lueker C1P
//! decision procedure plus a witness order (the frontier).

use crate::arena::PqTree;

/// Statistics from a solve run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PqStats {
    /// Columns actually reduced (after skipping trivial ones).
    pub reductions: usize,
    /// Columns skipped as trivial (≤ 1 atom or all atoms).
    pub skipped: usize,
    /// Arena nodes allocated over the run.
    pub nodes_allocated: usize,
}

/// Decides C1P for `columns` over `n_atoms` atoms; returns a witness atom
/// order on success (columns with < 2 atoms constrain nothing).
///
/// Generic over column storage: accepts anything iterating slice-likes —
/// `&[Vec<u32>]`, `&Vec<Vec<u32>>`, or a CSR arena like `c1p-core`'s
/// `FlatCols` — without materializing nested vectors.
pub fn solve<C: AsRef<[u32]>>(
    n_atoms: usize,
    columns: impl IntoIterator<Item = C>,
) -> Option<Vec<u32>> {
    solve_with_stats(n_atoms, columns).0
}

/// [`solve`] plus run statistics.
pub fn solve_with_stats<C: AsRef<[u32]>>(
    n_atoms: usize,
    columns: impl IntoIterator<Item = C>,
) -> (Option<Vec<u32>>, PqStats) {
    let mut stats = PqStats::default();
    if n_atoms == 0 {
        return (Some(Vec::new()), stats);
    }
    let mut tree = PqTree::universal(n_atoms);
    for col in columns {
        let col = col.as_ref();
        if col.len() <= 1 || col.len() >= n_atoms {
            stats.skipped += 1;
            continue;
        }
        stats.reductions += 1;
        if tree.reduce(col).is_err() {
            stats.nodes_allocated = tree.kind.len();
            return (None, stats);
        }
        #[cfg(debug_assertions)]
        tree.validate();
    }
    stats.nodes_allocated = tree.kind.len();
    (Some(tree.frontier()), stats)
}

/// An incremental Booth–Lueker session: the PQ-tree persists across
/// pushes, so a streaming client pays one `REDUCE` per new column instead
/// of a from-scratch solve per prefix — the classic answer to append-only
/// C1P traffic, and the client-side mirror the serving layer's session
/// auditor (`load_driver --mode sessions`) uses to predict verdicts.
///
/// Failure is sticky: once a pushed column is inconsistent with the
/// prefix, the tree is spent (Booth–Lueker reductions are destructive and
/// carry no undo), and every later [`Reducer::push`] reports `false`. A
/// caller mirroring a *rolled-back* stream rebuilds a fresh reducer from
/// the accepted prefix — O(p) once per rejection, amortized away on the
/// accept path.
#[derive(Debug, Clone)]
pub struct Reducer {
    n_atoms: usize,
    tree: Option<PqTree>,
    failed: bool,
    stats: PqStats,
}

impl Reducer {
    /// A fresh session over `n_atoms` atoms with no constraints yet.
    pub fn new(n_atoms: usize) -> Reducer {
        let tree = (n_atoms > 0).then(|| PqTree::universal(n_atoms));
        Reducer { n_atoms, tree, failed: false, stats: PqStats::default() }
    }

    /// Restricts the session to orders where `col` is consecutive.
    /// Returns whether the session is still consistent (i.e. the prefix
    /// including `col` is C1P); `false` is sticky.
    pub fn push(&mut self, col: &[u32]) -> bool {
        if self.failed {
            return false;
        }
        if col.len() <= 1 || col.len() >= self.n_atoms {
            self.stats.skipped += 1;
            return true;
        }
        let tree = self.tree.as_mut().expect("non-trivial column implies n_atoms > 0");
        self.stats.reductions += 1;
        if tree.reduce(col).is_err() {
            self.failed = true;
            self.stats.nodes_allocated = tree.kind.len();
            return false;
        }
        #[cfg(debug_assertions)]
        tree.validate();
        true
    }

    /// Is the pushed prefix still C1P?
    pub fn is_consistent(&self) -> bool {
        !self.failed
    }

    /// A witness atom order for the pushed prefix, while consistent.
    pub fn frontier(&self) -> Option<Vec<u32>> {
        if self.failed {
            return None;
        }
        Some(self.tree.as_ref().map_or_else(Vec::new, PqTree::frontier))
    }

    /// Run statistics so far.
    pub fn stats(&self) -> PqStats {
        let mut s = self.stats;
        if let Some(t) = &self.tree {
            s.nodes_allocated = t.kind.len();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(p) certificate check local to this crate (mirrors
    /// `c1p_matrix::verify::verify_linear`, kept dependency-free here).
    fn is_valid(n: usize, columns: &[Vec<u32>], order: &[u32]) -> bool {
        let mut pos = vec![usize::MAX; n];
        if order.len() != n {
            return false;
        }
        for (i, &a) in order.iter().enumerate() {
            pos[a as usize] = i;
        }
        columns.iter().all(|col| {
            if col.len() <= 1 {
                return true;
            }
            let ps: Vec<usize> = col.iter().map(|&a| pos[a as usize]).collect();
            let (lo, hi) = (*ps.iter().min().unwrap(), *ps.iter().max().unwrap());
            hi - lo + 1 == col.len()
        })
    }

    #[test]
    fn solves_interval_instance() {
        let cols = vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![1, 2, 3]];
        let (order, stats) = solve_with_stats(5, &cols);
        let order = order.expect("instance is C1P");
        assert!(is_valid(5, &cols, &order), "order {order:?}");
        assert_eq!(stats.reductions, 4);
    }

    #[test]
    fn rejects_tucker_cycle() {
        let cols = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]];
        assert_eq!(solve(4, &cols), None);
    }

    #[test]
    fn rejects_m_iv() {
        let cols = vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![1, 3, 5]];
        assert_eq!(solve(6, &cols), None);
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(solve(0, &[] as &[Vec<u32>]), Some(vec![]));
        assert_eq!(solve(1, &[vec![0]]), Some(vec![0]));
        let (order, stats) = solve_with_stats(3, &[vec![0, 1, 2], vec![2]]);
        assert!(order.is_some());
        assert_eq!(stats.skipped, 2);
        assert_eq!(stats.reductions, 0);
    }

    #[test]
    fn q_node_chains() {
        // force Q-node creation and repeated Q2/Q3 splices
        let cols = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![4, 5],
            vec![0, 1, 2, 3],
            vec![2, 3, 4, 5],
        ];
        let order = solve(6, &cols).expect("chain is C1P");
        assert!(is_valid(6, &cols, &order));
    }

    #[test]
    fn reducer_matches_batch_solve_per_prefix() {
        let cols = [vec![0u32, 1], vec![1, 2], vec![2, 3], vec![0, 3]];
        let mut r = Reducer::new(4);
        for k in 0..cols.len() {
            let ok = r.push(&cols[k]);
            let batch = solve(4, &cols[..=k]);
            assert_eq!(ok, batch.is_some(), "prefix {k}");
            assert_eq!(r.is_consistent(), batch.is_some());
            match r.frontier() {
                Some(order) => assert!(is_valid(4, &cols[..=k], &order), "prefix {k}"),
                None => assert!(batch.is_none()),
            }
        }
        // failure is sticky: even a trivially consistent column reports it
        assert!(!r.push(&[0, 1]));
        assert_eq!(r.frontier(), None);
        assert!(r.stats().reductions >= 3);
        // degenerate sessions
        let mut empty = Reducer::new(0);
        assert!(empty.push(&[]));
        assert_eq!(empty.frontier(), Some(vec![]));
    }

    #[test]
    fn partial_merge_p6() {
        // two partial blocks meeting at the root
        let cols = vec![
            vec![0, 1, 2],
            vec![4, 5, 6],
            vec![2, 3, 4], // bridges the two partial sides at the root
            vec![1, 2],
            vec![4, 5],
        ];
        let order = solve(7, &cols).expect("is C1P");
        assert!(is_valid(7, &cols, &order));
    }
}

//! `REDUCE(S)` — the Booth–Lueker template engine (templates L1, P1–P6,
//! Q1–Q3 of \[6\]).
//!
//! Per reduction: (1) walk each pertinent leaf to the root accumulating
//! subtree counts, which locates the *pertinent root* (the deepest node
//! whose subtree holds all of `S`); (2) process the pertinent subtree in
//! post-order, applying to each node the unique applicable template;
//! (3) reset the scratch state.
//!
//! Canonical orientation invariant: every node labeled **partial** is a
//! Q-node whose children read `[empty…, full…]` left to right. Templates
//! preserve this, which makes the splice directions of P4–P6/Q2/Q3
//! deterministic.

use crate::arena::{Kind, NodeId, PqTree, NIL};

/// Pertinence label of a node during one reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Label {
    /// No pertinent leaf below.
    #[default]
    Empty,
    /// Every leaf below is pertinent.
    Full,
    /// Some but not all leaves below are pertinent, arranged `[E…, F…]`.
    Partial,
}

/// The reduction failed: the column cannot be made consecutive — the
/// matrix is not C1P (Booth–Lueker's null tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotC1p;

impl PqTree {
    /// Restricts the tree to permutations where `column`'s atoms are
    /// consecutive. On `Err(NotC1p)` the tree is poisoned (callers stop).
    pub fn reduce(&mut self, column: &[u32]) -> Result<(), NotC1p> {
        let s = column.len();
        if s <= 1 || s >= self.n_atoms() {
            return Ok(()); // always consecutive
        }
        debug_assert!(
            {
                let mut c = column.to_vec();
                c.sort_unstable();
                c.dedup();
                c.len() == s
            },
            "column must be a set"
        );
        // 1. count walks (also recording each node's pertinent children so
        // the templates never scan empty children of fat P-nodes)
        for &a in column {
            let mut cur = self.leaf_of[a as usize];
            loop {
                let first_touch = self.count[cur as usize] == 0;
                if first_touch {
                    self.touched.push(cur);
                }
                self.count[cur as usize] += 1;
                let p = self.parent[cur as usize];
                if p == NIL {
                    break;
                }
                if first_touch {
                    self.pert_children[p as usize].push(cur);
                }
                cur = p;
            }
        }
        // pertinent root: deepest node with full count
        let mut proot = self.leaf_of[column[0] as usize];
        while (self.count[proot as usize] as usize) < s {
            proot = self.parent[proot as usize];
        }
        // 2. post-order over pertinent nodes (collected before any surgery)
        let mut order: Vec<NodeId> = Vec::new();
        let mut stack: Vec<(NodeId, bool)> = vec![(proot, false)];
        while let Some((x, expanded)) = stack.pop() {
            if expanded {
                order.push(x);
                continue;
            }
            stack.push((x, true));
            for i in 0..self.pert_children[x as usize].len() {
                stack.push((self.pert_children[x as usize][i], false));
            }
        }
        let mut result = Ok(());
        for &x in &order {
            let is_root = x == proot;
            let lab = match self.kind[x as usize] {
                Kind::Leaf(_) => Ok(Label::Full), // L1
                Kind::P => self.template_p(x, is_root),
                Kind::Q => self.template_q(x, is_root),
                Kind::Dead => unreachable!("dead node in pertinent subtree"),
            };
            match lab {
                Ok(l) => self.label[x as usize] = l,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
            if is_root {
                break;
            }
        }
        // 3. cleanup scratch
        for i in 0..self.touched.len() {
            let t = self.touched[i];
            self.count[t as usize] = 0;
            self.label[t as usize] = Label::Empty;
            self.pert_children[t as usize].clear();
        }
        self.touched.clear();
        result
    }

    /// Templates P1–P6.
    ///
    /// Classification walks only the pertinent children (recorded during
    /// the count pass); the root templates P2/P4/P6 restructure with
    /// O(pertinent) slot-indexed removals. P3/P5 must gather the empty
    /// children to re-parent them (O(|children|)) — the price of keeping
    /// full parent pointers; see the crate docs.
    fn template_p(&mut self, x: NodeId, is_root: bool) -> Result<Label, NotC1p> {
        let mut full = Vec::new();
        let mut partial = Vec::new();
        for i in 0..self.pert_children[x as usize].len() {
            let c = self.pert_children[x as usize][i];
            match self.label[c as usize] {
                Label::Full => full.push(c),
                Label::Partial => partial.push(c),
                Label::Empty => unreachable!("pertinent child must be labeled"),
            }
        }
        let n_children = self.children[x as usize].len();
        let n_empty = n_children - full.len() - partial.len();
        match partial.len() {
            0 => {
                if n_empty == 0 {
                    return Ok(Label::Full); // P1
                }
                debug_assert!(!full.is_empty(), "pertinent node has pertinent children");
                if is_root {
                    // P2: group the full children under one new P-child.
                    if full.len() >= 2 {
                        for &c in &full {
                            self.p_remove_child(x, c);
                        }
                        let pf = self.group_p(full);
                        self.p_push_child(x, pf);
                    }
                    Ok(Label::Full) // root label is irrelevant
                } else {
                    // P3: become partial: Q[ P(empties), P(fulls) ]
                    for &c in &full {
                        self.p_remove_child(x, c);
                    }
                    let empties = std::mem::take(&mut self.children[x as usize]);
                    let pe = self.group_p(empties);
                    let pf = self.group_p(full);
                    self.kind[x as usize] = Kind::Q;
                    self.set_children(x, vec![pe, pf]);
                    Ok(Label::Partial)
                }
            }
            1 => {
                let q = partial[0];
                debug_assert_eq!(self.kind[q as usize], Kind::Q, "partial nodes are Q-nodes");
                if is_root {
                    // P4: hang the fulls on q's full (right) end.
                    if !full.is_empty() {
                        for &c in &full {
                            self.p_remove_child(x, c);
                        }
                        let pf = self.group_p(full);
                        self.parent[pf as usize] = q;
                        self.pslot[pf as usize] = self.children[q as usize].len() as u32;
                        self.children[q as usize].push(pf);
                    }
                    self.normalize(x); // x may have a single child now
                    Ok(Label::Full)
                } else {
                    // P5: become partial: Q[ P(empties), q's children…, P(fulls) ]
                    for &c in &full {
                        self.p_remove_child(x, c);
                    }
                    self.p_remove_child(x, q);
                    let empties = std::mem::take(&mut self.children[x as usize]);
                    let mut kids = Vec::with_capacity(
                        empties.len().min(1) + full.len().min(1) + self.children[q as usize].len(),
                    );
                    if !empties.is_empty() {
                        kids.push(self.group_p(empties));
                    }
                    kids.extend(self.children[q as usize].clone());
                    if !full.is_empty() {
                        kids.push(self.group_p(full));
                    }
                    self.kind[x as usize] = Kind::Q;
                    self.set_children(x, kids);
                    self.free(q);
                    Ok(Label::Partial)
                }
            }
            2 if is_root => {
                // P6: merge the two partials around the fulls.
                let (q1, q2) = (partial[0], partial[1]);
                let mut combined = self.children[q1 as usize].clone();
                if !full.is_empty() {
                    for &c in &full {
                        self.p_remove_child(x, c);
                    }
                    combined.push(self.group_p(full));
                }
                combined.extend(self.children[q2 as usize].iter().rev().copied());
                self.set_children(q1, combined);
                self.p_remove_child(x, q2);
                self.free(q2);
                self.normalize(x);
                Ok(Label::Full)
            }
            _ => Err(NotC1p),
        }
    }

    /// Templates Q1–Q3, block-based: the pertinent children must form a
    /// contiguous run of the child sequence (positions come from the
    /// maintained slot indices, so the non-splicing common case never
    /// scans the Q-node's empty children). Patterns:
    ///
    /// * non-root (Q2): the run touches one end of the sequence, with at
    ///   most one partial child at its inner edge — the node becomes
    ///   partial in the canonical `[empty…, full…]` orientation;
    /// * root (Q3): the run may sit anywhere, with at most one partial
    ///   child at each edge, empties facing outward.
    fn template_q(&mut self, x: NodeId, is_root: bool) -> Result<Label, NotC1p> {
        let pert = std::mem::take(&mut self.pert_children[x as usize]);
        let len = self.children[x as usize].len();
        let cnt = pert.len();
        debug_assert!(cnt >= 1);
        let mut lo = u32::MAX;
        let mut hi = 0;
        let mut n_partial = 0usize;
        let mut partial_pos: [Option<u32>; 2] = [None, None];
        for &c in &pert {
            let slot = self.pslot[c as usize];
            debug_assert_eq!(self.children[x as usize][slot as usize], c);
            lo = lo.min(slot);
            hi = hi.max(slot);
            if self.label[c as usize] == Label::Partial {
                if n_partial == 2 {
                    self.pert_children[x as usize] = pert;
                    return Err(NotC1p);
                }
                partial_pos[n_partial] = Some(slot);
                n_partial += 1;
            }
        }
        self.pert_children[x as usize] = pert;
        // the pertinent children must be consecutive
        if (hi - lo + 1) as usize != cnt {
            return Err(NotC1p);
        }
        // partial children may only sit at the run's edges
        for p in partial_pos.iter().flatten() {
            if *p != lo && *p != hi {
                return Err(NotC1p);
            }
        }
        if n_partial == 2 && (partial_pos[0] == partial_pos[1] || !is_root) {
            return Err(NotC1p);
        }
        if cnt == len && n_partial == 0 {
            return Ok(Label::Full); // Q1
        }
        if !is_root {
            // Q2: some orientation must put the run at the right end of the
            // sequence with the partial child (if any) at the run's inner
            // (left) edge — the canonical [E…, F…] layout.
            let p = partial_pos[0];
            let as_is = hi as usize == len - 1 && p.is_none_or(|p| p == lo);
            let flipped = lo == 0 && p.is_none_or(|p| p == hi);
            if as_is {
                // keep
            } else if flipped {
                self.reverse_q(x);
                let new_lo = (len - 1 - hi as usize) as u32;
                let new_hi = (len - 1 - lo as usize) as u32;
                lo = new_lo;
                hi = new_hi;
                for p in partial_pos.iter_mut().flatten() {
                    *p = (len - 1) as u32 - *p;
                }
            } else {
                return Err(NotC1p);
            }
        }
        // splice partial children, empties facing outward from the run:
        // a partial at the run's left edge keeps its canonical [E…, F…]
        // order; one at the right edge is reversed. (For a run of one the
        // orientation is free and as-stored works in both positions.)
        let mut splices: Vec<(u32, bool)> =
            partial_pos.iter().flatten().map(|&p| (p, p == hi && hi != lo)).collect();
        if !splices.is_empty() {
            let mut kids = std::mem::take(&mut self.children[x as usize]);
            // splice from the rightmost slot so indices stay valid
            splices.sort_unstable_by_key(|&(slot, _)| std::cmp::Reverse(slot));
            for (slot, reversed) in splices {
                let q = kids[slot as usize];
                debug_assert_eq!(self.kind[q as usize], Kind::Q);
                let mut sub = self.children[q as usize].clone();
                if reversed {
                    sub.reverse();
                }
                kids.splice(slot as usize..=slot as usize, sub);
                self.free(q);
            }
            self.set_children(x, kids);
        }
        if is_root {
            Ok(Label::Full) // root label unused
        } else {
            Ok(Label::Partial)
        }
    }

    /// Physically reverses a Q-node's children (a legal Q re-orientation),
    /// fixing slot indices.
    fn reverse_q(&mut self, x: NodeId) {
        self.children[x as usize].reverse();
        let len = self.children[x as usize].len();
        for i in 0..len {
            let c = self.children[x as usize][i];
            self.pslot[c as usize] = i as u32;
        }
    }
}

/// Parse result of a Q-node's child labels (retained as the executable
/// specification of the Q2/Q3 patterns; the production path uses the
/// block-based matcher above).
#[cfg(test)]
#[allow(dead_code)]
struct QParse {
    /// Index of the first partial child, if any.
    p1: Option<usize>,
    /// Index of the second partial child (root reductions only).
    p2: Option<usize>,
}

/// Checks the label sequence against `E* P? F* (P? E*)`: the parenthesized
/// tail is allowed only at the pertinent root (template Q3); non-root
/// sequences must end with the full block (template Q2).
#[cfg(test)]
fn q_parse(labs: &[Label], is_root: bool) -> Option<QParse> {
    let n = labs.len();
    let mut i = 0;
    while i < n && labs[i] == Label::Empty {
        i += 1;
    }
    let mut p1 = None;
    if i < n && labs[i] == Label::Partial {
        p1 = Some(i);
        i += 1;
    }
    while i < n && labs[i] == Label::Full {
        i += 1;
    }
    if i == n {
        return Some(QParse { p1, p2: None });
    }
    if !is_root {
        return None;
    }
    let mut p2 = None;
    if labs[i] == Label::Partial {
        p2 = Some(i);
        i += 1;
    }
    while i < n && labs[i] == Label::Empty {
        i += 1;
    }
    if i == n {
        Some(QParse { p1, p2 })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labs(s: &str) -> Vec<Label> {
        s.chars()
            .map(|c| match c {
                'E' => Label::Empty,
                'F' => Label::Full,
                'P' => Label::Partial,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn q_parse_non_root() {
        assert!(q_parse(&labs("EEFF"), false).is_some());
        assert!(q_parse(&labs("EPF"), false).is_some());
        assert!(q_parse(&labs("EP"), false).is_some());
        assert!(q_parse(&labs("FFE"), false).is_none()); // fulls must end it
        assert!(q_parse(&labs("EPE"), false).is_none());
        assert!(q_parse(&labs("EFPF"), false).is_none());
        assert!(q_parse(&labs("PP"), false).is_none());
    }

    #[test]
    fn q_parse_root() {
        assert!(q_parse(&labs("EFFE"), true).is_some());
        assert!(q_parse(&labs("EPFPE"), true).is_some());
        assert!(q_parse(&labs("EPPE"), true).is_some());
        assert!(q_parse(&labs("PFP"), true).is_some());
        assert!(q_parse(&labs("FEF"), true).is_none());
        assert!(q_parse(&labs("PFPF"), true).is_none());
        assert!(q_parse(&labs("EPFPFE"), true).is_none());
    }

    #[test]
    fn reduce_simple_pair() {
        let mut t = PqTree::universal(4);
        t.reduce(&[1, 2]).unwrap();
        t.validate();
        let f = t.frontier();
        let pos: Vec<usize> =
            [1u32, 2].iter().map(|&a| f.iter().position(|&x| x == a).unwrap()).collect();
        assert_eq!((pos[0] as i64 - pos[1] as i64).abs(), 1, "frontier {f:?}");
    }

    #[test]
    fn reduce_cycle_fails() {
        // M_I(1): {0,1}, {1,2}, {0,2} over 3 atoms cannot all be consecutive
        let mut t = PqTree::universal(3);
        t.reduce(&[0, 1]).unwrap();
        t.reduce(&[1, 2]).unwrap();
        assert_eq!(t.reduce(&[0, 2]), Err(NotC1p));
    }

    #[test]
    fn reduce_overlapping_chain() {
        let mut t = PqTree::universal(5);
        t.reduce(&[0, 1, 2]).unwrap();
        t.reduce(&[1, 2, 3]).unwrap();
        t.reduce(&[2, 3, 4]).unwrap();
        t.validate();
        let f = t.frontier();
        // the only valid orders are 0..5 or its reverse
        assert!(f == vec![0, 1, 2, 3, 4] || f == vec![4, 3, 2, 1, 0], "frontier {f:?}");
    }

    #[test]
    fn trivial_columns_are_noops() {
        let mut t = PqTree::universal(3);
        t.reduce(&[]).unwrap();
        t.reduce(&[2]).unwrap();
        t.reduce(&[0, 1, 2]).unwrap();
        t.validate();
        assert_eq!(t.frontier().len(), 3);
    }
}

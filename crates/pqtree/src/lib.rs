//! # c1p-pqtree: Booth–Lueker PQ-trees
//!
//! The classic data structure for consecutive-ones testing (Booth & Lueker
//! \[6\]) — the baseline the paper positions itself against ("avoiding the
//! complex implementations associated with PQ-trees") and the sanctioned
//! solver for small subproblems in its Section 5 ("for subproblems where
//! p_i ≤ log n we can apply ours or any near linear time sequential
//! algorithm [6, 4]").
//!
//! A PQ-tree over `n` leaves represents a set of permutations closed under
//! (a) arbitrary reordering of P-node children and (b) reversal of Q-node
//! children. `REDUCE(S)` restricts the represented set to permutations
//! where the leaves of `S` are consecutive, applying the templates
//! L1, P1–P6, Q1–Q3; reduction fails exactly when no permutation survives —
//! i.e. the column set is not C1P.
//!
//! Implementation notes (documented deviations from the letter of \[6\]):
//! every child keeps a parent pointer (Booth–Lueker only maintain them for
//! endmost Q-children to reach strict linearity; full pointers are simpler
//! and amortize well at our scales), and the pertinent subtree is located
//! by leaf-count walks rather than the BUBBLE pass. The represented
//! permutation set is identical; only constant/log factors differ. The
//! pseudo-node of BUBBLE is unnecessary because the pertinent root is
//! found exactly (interior Q-blocks are handled by template Q3 at that
//! root).

pub mod arena;
pub mod reduce;
pub mod solve;

pub use arena::{Kind, NodeId, PqTree, NIL};
pub use reduce::{Label, NotC1p};
pub use solve::{solve, solve_with_stats, PqStats, Reducer};

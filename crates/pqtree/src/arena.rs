//! PQ-tree node arena and tree surgery.

/// Node index.
pub type NodeId = u32;
/// Null node.
pub const NIL: NodeId = u32::MAX;

/// Node kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A leaf carrying an atom.
    Leaf(u32),
    /// Children may be permuted arbitrarily.
    P,
    /// Children order fixed up to reversal.
    Q,
    /// Freed node (must never be reachable).
    Dead,
}

/// A PQ-tree over atoms `0..n`.
///
/// Invariants (checked by [`PqTree::validate`]):
/// * every atom appears on exactly one live leaf;
/// * P-nodes have ≥ 2 children, Q-nodes ≥ 3;
/// * parent pointers mirror child lists.
#[derive(Debug, Clone)]
pub struct PqTree {
    pub(crate) kind: Vec<Kind>,
    pub(crate) children: Vec<Vec<NodeId>>,
    pub(crate) parent: Vec<NodeId>,
    pub(crate) root: NodeId,
    n_atoms: usize,
    /// scratch: pertinent leaf count per node (cleared after each reduce)
    pub(crate) count: Vec<u32>,
    /// scratch: template label per node (cleared after each reduce)
    pub(crate) label: Vec<crate::reduce::Label>,
    /// scratch: nodes touched during the current reduce
    pub(crate) touched: Vec<NodeId>,
    /// scratch: pertinent children per node (cleared after each reduce)
    pub(crate) pert_children: Vec<Vec<NodeId>>,
    /// index of the node within its parent's child list (maintained so
    /// P-node surgeries run in O(pertinent) instead of O(children))
    pub(crate) pslot: Vec<u32>,
    /// leaf node of each atom
    pub(crate) leaf_of: Vec<NodeId>,
}

impl PqTree {
    /// The universal tree on `n` atoms: a single P-node over all leaves
    /// (for `n == 1` just the leaf; `n == 0` an empty tree).
    pub fn universal(n: usize) -> Self {
        let mut t = PqTree {
            kind: Vec::new(),
            children: Vec::new(),
            parent: Vec::new(),
            root: NIL,
            n_atoms: n,
            count: Vec::new(),
            label: Vec::new(),
            touched: Vec::new(),
            pert_children: Vec::new(),
            pslot: Vec::new(),
            leaf_of: vec![NIL; n],
        };
        if n == 0 {
            return t;
        }
        let leaves: Vec<NodeId> = (0..n).map(|a| t.new_node(Kind::Leaf(a as u32))).collect();
        for (a, &l) in leaves.iter().enumerate() {
            t.leaf_of[a] = l;
        }
        if n == 1 {
            t.root = leaves[0];
        } else {
            let root = t.new_node(Kind::P);
            t.set_children(root, leaves);
            t.root = root;
        }
        t
    }

    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.n_atoms
    }

    /// Allocates a node.
    pub(crate) fn new_node(&mut self, kind: Kind) -> NodeId {
        let id = self.kind.len() as NodeId;
        self.kind.push(kind);
        self.children.push(Vec::new());
        self.parent.push(NIL);
        self.count.push(0);
        self.label.push(crate::reduce::Label::Empty);
        self.pert_children.push(Vec::new());
        self.pslot.push(0);
        id
    }

    /// Replaces `x`'s children, fixing the children's parent pointers and
    /// slot indices.
    pub(crate) fn set_children(&mut self, x: NodeId, kids: Vec<NodeId>) {
        for (i, &k) in kids.iter().enumerate() {
            self.parent[k as usize] = x;
            self.pslot[k as usize] = i as u32;
        }
        self.children[x as usize] = kids;
    }

    /// Removes `child` from P-node `x` in O(1) via its slot index
    /// (swap-remove; child order is irrelevant for P-nodes).
    pub(crate) fn p_remove_child(&mut self, x: NodeId, child: NodeId) {
        debug_assert_eq!(self.kind[x as usize], Kind::P);
        debug_assert_eq!(self.parent[child as usize], x);
        let slot = self.pslot[child as usize] as usize;
        let kids = &mut self.children[x as usize];
        debug_assert_eq!(kids[slot], child);
        kids.swap_remove(slot);
        if slot < kids.len() {
            self.pslot[kids[slot] as usize] = slot as u32;
        }
    }

    /// Appends `child` to P-node `x` in O(1).
    pub(crate) fn p_push_child(&mut self, x: NodeId, child: NodeId) {
        self.parent[child as usize] = x;
        self.pslot[child as usize] = self.children[x as usize].len() as u32;
        self.children[x as usize].push(child);
    }

    /// Marks `x` dead (must already be unlinked).
    pub(crate) fn free(&mut self, x: NodeId) {
        self.kind[x as usize] = Kind::Dead;
        self.children[x as usize].clear();
        self.parent[x as usize] = NIL;
    }

    /// Groups `nodes` under one node: returns the single node unchanged for
    /// `len == 1`, otherwise a fresh P-node over them. Panics on empty.
    pub(crate) fn group_p(&mut self, nodes: Vec<NodeId>) -> NodeId {
        assert!(!nodes.is_empty(), "group of nothing");
        if nodes.len() == 1 {
            return nodes[0];
        }
        let p = self.new_node(Kind::P);
        self.set_children(p, nodes);
        p
    }

    /// Replaces node `old` by `new` inside `old`'s parent (or at the tree
    /// root), preserving position.
    pub(crate) fn replace_in_parent(&mut self, old: NodeId, new: NodeId) {
        let p = self.parent[old as usize];
        if p == NIL {
            debug_assert_eq!(self.root, old);
            self.root = new;
            self.parent[new as usize] = NIL;
        } else {
            let slot = if self.kind[p as usize] == Kind::P {
                self.pslot[old as usize] as usize
            } else {
                self.children[p as usize]
                    .iter()
                    .position(|&c| c == old)
                    .expect("old is a child of its parent")
            };
            debug_assert_eq!(self.children[p as usize][slot], old);
            self.children[p as usize][slot] = new;
            self.parent[new as usize] = p;
            self.pslot[new as usize] = slot as u32;
        }
    }

    /// If `x` has exactly one child, splice the child into `x`'s place.
    /// If `x` is a Q-node with two children, turn it into a P-node.
    pub(crate) fn normalize(&mut self, x: NodeId) {
        match self.kind[x as usize] {
            Kind::P | Kind::Q => match self.children[x as usize].len() {
                0 => panic!("childless internal node"),
                1 => {
                    let c = self.children[x as usize][0];
                    self.replace_in_parent(x, c);
                    self.free(x);
                }
                2 => self.kind[x as usize] = Kind::P,
                _ => {}
            },
            _ => {}
        }
    }

    /// The frontier: atoms in left-to-right leaf order — one permutation
    /// represented by the tree (Booth–Lueker's certificate order).
    pub fn frontier(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.n_atoms);
        if self.root == NIL {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(x) = stack.pop() {
            match self.kind[x as usize] {
                Kind::Leaf(a) => out.push(a),
                Kind::P | Kind::Q => {
                    for &c in self.children[x as usize].iter().rev() {
                        stack.push(c);
                    }
                }
                Kind::Dead => panic!("dead node reachable"),
            }
        }
        out
    }

    /// Booth–Lueker's consistent-permutation count:
    /// `Π over P-nodes (#children)! × 2^(#Q-nodes)`, saturating at
    /// `u128::MAX`. Distinct arrangements produce distinct frontiers
    /// because sibling subtrees carry disjoint atom sets.
    pub fn count_permutations(&self) -> u128 {
        if self.root == NIL {
            return 1;
        }
        let mut count: u128 = 1;
        let mut stack = vec![self.root];
        while let Some(x) = stack.pop() {
            match self.kind[x as usize] {
                Kind::Leaf(_) => {}
                Kind::P => {
                    let c = self.children[x as usize].len() as u128;
                    let mut f: u128 = 1;
                    for i in 2..=c {
                        f = f.saturating_mul(i);
                    }
                    count = count.saturating_mul(f);
                }
                Kind::Q => count = count.saturating_mul(2),
                Kind::Dead => panic!("dead node reachable"),
            }
            stack.extend(&self.children[x as usize]);
        }
        count
    }

    /// Structural validation (tests / debug builds).
    pub fn validate(&self) {
        if self.n_atoms == 0 {
            assert_eq!(self.root, NIL);
            return;
        }
        assert_ne!(self.root, NIL);
        assert_eq!(self.parent[self.root as usize], NIL);
        let mut seen_atoms = vec![false; self.n_atoms];
        let mut stack = vec![self.root];
        let mut live = 0usize;
        while let Some(x) = stack.pop() {
            live += 1;
            match self.kind[x as usize] {
                Kind::Leaf(a) => {
                    assert!(!seen_atoms[a as usize], "atom {a} appears twice");
                    seen_atoms[a as usize] = true;
                    assert_eq!(self.leaf_of[a as usize], x, "leaf_of consistency");
                    assert!(self.children[x as usize].is_empty());
                }
                Kind::P => {
                    assert!(self.children[x as usize].len() >= 2, "P-node arity");
                }
                Kind::Q => {
                    assert!(self.children[x as usize].len() >= 3, "Q-node arity");
                }
                Kind::Dead => panic!("dead node reachable"),
            }
            for (i, &c) in self.children[x as usize].iter().enumerate() {
                assert_eq!(self.parent[c as usize], x, "parent pointer mirror");
                if self.kind[x as usize] == Kind::P {
                    assert_eq!(self.pslot[c as usize] as usize, i, "slot index mirror");
                }
                stack.push(c);
            }
        }
        assert!(seen_atoms.iter().all(|&s| s), "every atom reachable");
        let _ = live;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universal_tree_shape() {
        let t = PqTree::universal(5);
        t.validate();
        assert_eq!(t.kind[t.root as usize], Kind::P);
        assert_eq!(t.children[t.root as usize].len(), 5);
        let mut f = t.frontier();
        f.sort_unstable();
        assert_eq!(f, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tiny_trees() {
        let t0 = PqTree::universal(0);
        assert!(t0.frontier().is_empty());
        t0.validate();
        let t1 = PqTree::universal(1);
        assert_eq!(t1.frontier(), vec![0]);
        t1.validate();
    }

    #[test]
    fn normalize_one_child_and_q2() {
        let mut t = PqTree::universal(3);
        // fabricate: root P with child q(Q) holding two leaves + one leaf
        let l0 = t.leaf_of[0];
        let l1 = t.leaf_of[1];
        let l2 = t.leaf_of[2];
        let q = t.new_node(Kind::Q);
        t.set_children(q, vec![l0, l1]);
        let root = t.root;
        t.set_children(root, vec![q, l2]);
        t.normalize(q); // Q with 2 children -> P
        assert_eq!(t.kind[q as usize], Kind::P);
        t.validate();
        // now collapse a single-child node
        let wrap = t.new_node(Kind::P);
        t.set_children(root, vec![wrap, l2]);
        t.set_children(wrap, vec![q]);
        t.normalize(wrap);
        assert_eq!(t.children[root as usize][0], q);
        t.validate();
    }

    #[test]
    fn replace_at_root() {
        let mut t = PqTree::universal(2);
        let old_root = t.root;
        let p = t.new_node(Kind::P);
        let kids = t.children[old_root as usize].clone();
        t.set_children(p, kids);
        t.children[old_root as usize].clear();
        t.replace_in_parent(old_root, p);
        t.free(old_root);
        assert_eq!(t.root, p);
        t.validate();
    }
}

//! Differential validation of the PQ-tree against brute force and planted
//! instances. Any template bug shows up here: acceptance must match the
//! permutation-enumeration oracle exactly, and every accepted instance must
//! come with a verified witness order.

use c1p_matrix::generate::{planted_c1p, PlantedShape};
use c1p_matrix::tucker;
use c1p_matrix::verify::{brute_force_linear, verify_linear};
use c1p_matrix::Ensemble;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn check(ens: &Ensemble) {
    let got = c1p_pqtree::solve(ens.n_atoms(), columns(ens));
    let expect = brute_force_linear(ens);
    match (got, expect) {
        (Some(order), Some(_)) => {
            verify_linear(ens, &order).unwrap_or_else(|v| {
                panic!("invalid witness {order:?}: {v} for {:?}", ens.to_matrix())
            });
        }
        (None, None) => {}
        (got, expect) => {
            panic!("pq-tree={} oracle={} for\n{}", got.is_some(), expect.is_some(), ens.to_matrix())
        }
    }
}

fn columns(ens: &Ensemble) -> Vec<Vec<u32>> {
    ens.columns().to_vec()
}

#[test]
fn exhaustive_small_matrices() {
    // every ensemble with n atoms and m columns, columns as bitmasks
    for (n, m) in [(3usize, 3usize), (4, 2), (4, 3), (5, 2)] {
        let masks = 1usize << n;
        let total = masks.pow(m as u32);
        // full enumeration up to ~70k instances per shape
        for code in 0..total {
            let mut cc = code;
            let mut cols = Vec::with_capacity(m);
            for _ in 0..m {
                let mask = cc % masks;
                cc /= masks;
                cols.push((0..n as u32).filter(|&a| mask >> a & 1 == 1).collect::<Vec<_>>());
            }
            let ens = Ensemble::from_columns(n, cols).unwrap();
            check(&ens);
        }
    }
}

#[test]
fn exhaustive_denser_five_atoms() {
    // 5 atoms, 3 random-ish columns — LCG-driven but wide coverage
    let masks = 1usize << 5;
    let mut seed = 0xC0FFEEu64;
    let mut next = || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 33) as usize) % masks
    };
    for _ in 0..20_000 {
        let cols: Vec<Vec<u32>> = (0..4)
            .map(|_| {
                let mask = next();
                (0..5u32).filter(|&a| mask >> a & 1 == 1).collect()
            })
            .collect();
        let ens = Ensemble::from_columns(5, cols).unwrap();
        check(&ens);
    }
}

#[test]
fn exhaustive_medium_vs_oracle() {
    // 6-7 atoms with interval-biased columns: mostly-C1P region where
    // template interactions get deep
    let mut seed = 0xBADC0DEu64;
    let mut next = |m: usize| {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 33) as usize) % m
    };
    for _ in 0..4_000 {
        let n = 6 + next(2);
        let m = 2 + next(5);
        let mut cols = Vec::with_capacity(m);
        for _ in 0..m {
            if next(3) < 2 {
                // planted interval in a scrambled order
                let len = 2 + next(n - 2);
                let start = next(n - len + 1);
                cols.push((start as u32..(start + len) as u32).collect::<Vec<u32>>());
            } else {
                let mask = 1 + next((1 << n) - 1);
                cols.push((0..n as u32).filter(|&a| mask >> a & 1 == 1).collect());
            }
        }
        let ens = Ensemble::from_columns(n, cols).unwrap();
        check(&ens);
    }
}

#[test]
fn accepts_all_planted() {
    let mut rng = SmallRng::seed_from_u64(2024);
    for trial in 0..60 {
        let n = 10 + (trial % 17) * 13;
        let (ens, _) = planted_c1p(
            PlantedShape { n_atoms: n, n_columns: 3 * n, min_len: 2, max_len: (n / 2).max(3) },
            &mut rng,
        );
        let order = c1p_pqtree::solve(ens.n_atoms(), columns(&ens))
            .unwrap_or_else(|| panic!("rejected planted C1P instance (n={n})"));
        verify_linear(&ens, &order).expect("witness must verify");
    }
}

#[test]
fn rejects_all_tucker_obstructions() {
    for (name, ens) in tucker::small_obstructions() {
        assert_eq!(
            c1p_pqtree::solve(ens.n_atoms(), columns(&ens)),
            None,
            "{name} must be rejected"
        );
    }
    // obstructions embedded in larger C1P context
    let emb = tucker::embed_obstruction(&tucker::m_iv(), 40, 17, &[(0, 10), (20, 15), (30, 10)]);
    assert_eq!(c1p_pqtree::solve(emb.n_atoms(), columns(&emb)), None);
}

#[test]
fn column_order_does_not_matter() {
    let mut rng = SmallRng::seed_from_u64(7);
    let (ens, _) =
        planted_c1p(PlantedShape { n_atoms: 30, n_columns: 50, min_len: 2, max_len: 10 }, &mut rng);
    let mut cols = columns(&ens);
    for rot in 0..5 {
        cols.rotate_left(rot * 7 + 1);
        let order = c1p_pqtree::solve(30, &cols).expect("still C1P under reordering");
        verify_linear(&ens, &order).expect("witness valid");
    }
}

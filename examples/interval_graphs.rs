//! Interval-graph recognition through C1P (paper Section 1.4: "the
//! recognition problem for interval graphs can also be reduced to the C1P
//! problem").
//!
//! ```text
//! cargo run --example interval_graphs
//! ```
//!
//! We recognize three graphs: an interval graph built from known intervals
//! (recovering a model), a chordless cycle (not chordal), and the
//! subdivided star (chordal but with an asteroidal triple — the clique
//! matrix fails C1P).

use c1p::interval_graphs::{recognize, NotInterval, SimpleGraph};

fn main() {
    // 1. a genuine interval graph from 8 intervals
    let intervals: Vec<(u32, u32)> =
        vec![(0, 5), (3, 9), (8, 14), (1, 4), (12, 18), (10, 13), (2, 6), (16, 20)];
    let n = intervals.len();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let (a, b) = intervals[i];
            let (c, d) = intervals[j];
            if a < d && c < b {
                edges.push((i as u32, j as u32));
            }
        }
    }
    let g = SimpleGraph::from_edges(n, &edges);
    match recognize(&g) {
        Ok(model) => {
            println!("graph 1: interval graph recognized");
            println!("  consecutive clique order ({} maximal cliques):", model.clique_order.len());
            for (i, q) in model.clique_order.iter().enumerate() {
                println!("    clique {i}: vertices {q:?}");
            }
            println!("  recovered interval model (clique-position coordinates):");
            for (v, (lo, hi)) in model.intervals.iter().enumerate() {
                println!("    vertex {v}: [{lo}, {hi})  (true interval {:?})", intervals[v]);
            }
        }
        Err(e) => println!("graph 1: unexpectedly rejected: {e:?}"),
    }

    // 2. C5: not chordal, so certainly not interval
    let c5 = SimpleGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    match recognize(&c5) {
        Err(NotInterval::NotChordal) => println!("\ngraph 2 (C5): rejected — not chordal"),
        other => println!("\ngraph 2 (C5): unexpected {other:?}"),
    }

    // 3. the subdivided K_{1,3}: a tree (hence chordal), but its three
    //    leaves form an asteroidal triple — the clique matrix is not C1P.
    let spider = SimpleGraph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 5), (3, 6)]);
    match recognize(&spider) {
        Err(NotInterval::CliquesNotConsecutive) => {
            println!("graph 3 (subdivided star): chordal, but clique matrix not C1P — rejected")
        }
        other => println!("graph 3: unexpected {other:?}"),
    }
}

//! The consecutive-retrieval file organization problem (paper Section 1.4;
//! Ghosh [11]).
//!
//! ```text
//! cargo run --release --example consecutive_retrieval
//! ```
//!
//! Records must be laid out on a linear storage medium so that every query
//! class fetches one contiguous run (no seeks inside a query). That is
//! exactly C1P with atoms = records and columns = queries: a witness order
//! is an optimal layout, and we report per-query seek costs before/after.

use c1p::matrix::biology::RetrievalWorkload;
use c1p::matrix::verify::positions;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Blocks touched minus blocks needed: 0 = perfectly consecutive.
fn excess_span(ens: &c1p::matrix::Ensemble, order: &[u32]) -> usize {
    let pos = positions(ens.n_atoms(), order).expect("permutation");
    ens.columns()
        .iter()
        .filter(|c| c.len() >= 2)
        .map(|col| {
            let ps: Vec<u32> = col.iter().map(|&a| pos[a as usize]).collect();
            let (lo, hi) = (ps.iter().min().unwrap(), ps.iter().max().unwrap());
            (hi - lo + 1) as usize - col.len()
        })
        .sum()
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let w = RetrievalWorkload { n_records: 600, n_queries: 1500, max_query_size: 12 };
    let (ens, _) = w.sample(&mut rng);
    println!(
        "file organization instance: {} records, {} query classes, p = {}",
        ens.n_atoms(),
        ens.n_columns(),
        ens.p()
    );

    // A naive layout (record id order) scatters queries across the medium.
    let naive: Vec<u32> = (0..ens.n_atoms() as u32).collect();
    println!("naive layout: total excess span = {}", excess_span(&ens, &naive));

    let order = c1p::solve(&ens).expect("workload generated with a consistent layout");
    println!("C1P layout:   total excess span = {}", excess_span(&ens, &order));
    assert_eq!(excess_span(&ens, &order), 0);

    // Adding one incompatible query breaks consecutive retrievability —
    // the solver reports that no perfect layout exists.
    let mut cols = ens.columns().to_vec();
    let incompatible = vec![order[0], order[ens.n_atoms() / 2], order[ens.n_atoms() - 1]];
    cols.push(incompatible.clone());
    // make it genuinely incompatible by also requiring the complement pair
    let e2 = c1p::matrix::Ensemble::from_columns(ens.n_atoms(), cols).unwrap();
    match c1p::solve(&e2) {
        Ok(_) => println!("after adding query {incompatible:?}: still consecutive"),
        Err(_) => println!(
            "after adding query {incompatible:?}: no perfect layout exists — \
             fall back to approximate placement"
        ),
    }
}

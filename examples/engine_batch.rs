//! In-process use of the solve engine (no TCP): batch 1 000 small
//! ensembles — fresh instances, duplicates, and column permutations —
//! through one [`c1p::Engine`] and print its statistics.
//!
//! ```text
//! cargo run --release --example engine_batch
//! ```

use c1p::matrix::generate::{mixed_schedule, MixedSchedule};
use c1p::matrix::Ensemble;
use c1p::{Engine, EngineConfig, Verdict};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

fn main() {
    // the shared mixed serving workload (same definition as load_driver
    // and experiment E11): 800 requests with verbatim replays...
    let mut requests = mixed_schedule(MixedSchedule {
        requests: 800,
        seed: 0xE7A,
        dup_every: 4,
        reject_every: 3,
        n_lo: 40,
        n_hi: 100,
    });
    // ...plus 200 column-permuted replays: a different byte sequence that
    // still *hits* the cache, by the canonicalization rule
    let mut rng = SmallRng::seed_from_u64(0xE7A);
    for _ in 0..200 {
        let e = &requests[rng.random_range(0..requests.len())];
        let permuted =
            Ensemble::from_columns(e.n_atoms(), e.columns().iter().rev().cloned().collect())
                .unwrap();
        requests.push(permuted);
    }

    let engine = Engine::new(EngineConfig::default());
    let t0 = Instant::now();
    let mut accepts = 0usize;
    let mut rejects = 0usize;
    for chunk in requests.chunks(64) {
        for result in engine.solve_batch(chunk) {
            match result.expect("no admission failures at these sizes") {
                Verdict::C1p { .. } => accepts += 1,
                Verdict::NotC1p { .. } => rejects += 1,
            }
        }
    }
    let wall = t0.elapsed();

    let s = engine.stats();
    println!(
        "solved {} requests in {:.2?} ({:.0} req/s)",
        accepts + rejects,
        wall,
        (accepts + rejects) as f64 / wall.as_secs_f64()
    );
    println!("verdicts: {accepts} C1P, {rejects} certified rejections");
    println!(
        "cache: {} hits, {} misses, {} coalesced ({:.0}% hit rate), {} entries / {} bytes, {} evictions",
        s.hits,
        s.misses,
        s.coalesced,
        100.0 * s.hit_rate(),
        s.cache_entries,
        s.cache_bytes,
        s.evictions,
    );
    println!(
        "batching: {} batches, {} small fanned out, {} large direct",
        s.batches, s.batched_small, s.large_direct,
    );
    println!("\nfull snapshot: {}", s.to_json());
}

//! Whitney switches and 2-isomorphism — the paper's Fig. 1 phenomenon.
//!
//! ```text
//! cargo run --example whitney_switch
//! ```
//!
//! Two graphs on the same edge set can have identical cycle structure (be
//! *2-isomorphic*, Whitney's theorem / the paper's Theorem 1) without being
//! isomorphic at all. We build the pair, verify equal cycle spaces, show
//! the degree sequences differ, and list all separation pairs — the places
//! where switches are available, which is exactly what the Tutte
//! decomposition catalogues (Theorem 2).

use c1p::graph::cycle_space::cycle_space;
use c1p::graph::separation::separation_pairs;
use c1p::graph::tutte_ref;
use c1p::graph::whitney::{are_2_isomorphic, fig1_pair};

fn main() {
    let (g1, g2, part) = fig1_pair();
    println!("G1 edges: {:?}", g1.edges());
    println!("G2 edges: {:?}  (switched part: edges {part:?})", g2.edges());

    println!("\n2-isomorphic (same cycle set)? {}", are_2_isomorphic(&g1, &g2));
    println!("cycle space rank: {} = {}", cycle_space(&g1).rank(), cycle_space(&g2).rank());

    let mut d1 = g1.degrees();
    let mut d2 = g2.degrees();
    d1.sort_unstable();
    d2.sort_unstable();
    println!("degree multisets: G1 {d1:?} vs G2 {d2:?}");
    println!("isomorphic? no — the degree multisets differ, yet every cycle is shared.");

    println!("\nseparation pairs of G1 (each admits a Whitney switch): ");
    for (u, v) in separation_pairs(&g1) {
        println!("  {{{u}, {v}}}");
    }

    let dec = tutte_ref::decompose(&g1);
    println!("\nTutte decomposition of G1 ({} members):", dec.members.len());
    for m in &dec.members {
        println!("  {:?}: real edges {:?}", m.kind, m.real_edges());
    }
    println!(
        "polygons may re-link and markers may re-orient — composing all \
         choices enumerates exactly the 2-isomorphism class (Theorem 2)."
    );
}

//! Circular-ones testing (the paper's cycle-graphic ensembles), and the
//! Case-2 transform connecting it to C1P.
//!
//! ```text
//! cargo run --example circular_ones
//! ```

use c1p::matrix::transform::{circular_transform, untransform_order};
use c1p::matrix::{verify_circular, Ensemble};
use c1p::solve_circular;

fn main() {
    // Adjacent pairs around a 7-cycle: realizable on a cycle, not on a path.
    let cols: Vec<Vec<u32>> = (0..7).map(|i| vec![i, (i + 1) % 7]).collect();
    let ens = Ensemble::from_columns(7, cols).unwrap();
    println!("cyclic-pairs ensemble: linear C1P? {}", c1p::solve(&ens).is_ok());
    let order = solve_circular(&ens).expect("it is circular-ones");
    verify_circular(&ens, &order).unwrap();
    println!("circular-ones witness (read cyclically): {order:?}");

    // The paper's Case-2 machinery in isolation: Tucker's complement
    // transform turns a *linear* question into a *circular* one.
    let lin = Ensemble::from_columns(
        6,
        vec![vec![0, 1, 2, 3, 4], vec![1, 2], vec![4, 5], vec![2, 3, 4, 5, 0]],
    )
    .unwrap();
    let t = circular_transform(&lin, (lin.n_atoms() + 1) / 3);
    println!(
        "\ntransform: {} columns -> {} columns over {} atoms (r = {})",
        lin.n_columns(),
        t.ensemble.n_columns(),
        t.ensemble.n_atoms(),
        t.r
    );
    for (i, col) in t.ensemble.columns().iter().enumerate() {
        let (orig, complemented) = t.provenance[i];
        println!(
            "  column {orig} {} -> {col:?}",
            if complemented { "complemented" } else { "kept        " }
        );
    }
    let circ = solve_circular(&t.ensemble).expect("transform preserves realizability");
    let back = untransform_order(&circ, t.r);
    println!("circular solution {circ:?} cut at r -> linear witness {back:?}");
    c1p::matrix::verify_linear(&lin, &back).unwrap();
    println!("verified: the cut realization solves the original linear instance.");
}

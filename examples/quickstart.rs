//! Quickstart: solve the paper's running example (Fig. 2) end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The 8×7 matrix of Fig. 2 (atoms = rows, columns a–g) is consecutive-ones
//! realizable; the solver returns a row order under which every column's
//! ones are contiguous, and we print the permuted matrix to show it.

use c1p::matrix::io::fig2_matrix;
use c1p::matrix::verify_linear;

fn main() {
    let ens = fig2_matrix();
    println!("Input (the paper's Fig. 2 matrix, atoms = rows):");
    print!("{}", ens.to_matrix());

    match c1p::solve(&ens) {
        Some(order) => {
            verify_linear(&ens, &order).expect("solver output is always verified");
            println!("\nC1P: yes — witness atom order {order:?}");
            println!("\nRows permuted into the witness order:");
            // permute rows: row i of the display = atom order[i]
            let m = ens.to_matrix();
            for &a in &order {
                let mut line = String::new();
                for c in 0..m.n_cols() {
                    line.push(if m.get(a as usize, c) { '1' } else { '0' });
                }
                println!("{line}   <- atom {a}");
            }
            println!("\nEvery column now shows one contiguous block of ones.");
        }
        None => println!("\nC1P: no"),
    }

    // A non-example: Tucker's M_I(1) (the 3-cycle) cannot be realized.
    let bad = c1p::matrix::tucker::m_i(1);
    println!("\nTucker M_I(1) is C1P? {}", c1p::solve(&bad).is_some());
}

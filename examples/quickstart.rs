//! Quickstart: solve the paper's running example (Fig. 2) end to end,
//! then certify a rejection.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The 8×7 matrix of Fig. 2 (atoms = rows, columns a–g) is consecutive-ones
//! realizable; the solver returns a row order under which every column's
//! ones are contiguous, and we print the permuted matrix to show it. A
//! non-C1P input gets the other half of the story: a Tucker witness naming
//! the obstruction submatrix, checked independently of the solver.

use c1p::matrix::io::fig2_matrix;
use c1p::matrix::verify_linear;

fn main() {
    let ens = fig2_matrix();
    println!("Input (the paper's Fig. 2 matrix, atoms = rows):");
    print!("{}", ens.to_matrix());

    match c1p::solve(&ens) {
        Ok(order) => {
            verify_linear(&ens, &order).expect("solver output is always verified");
            println!("\nC1P: yes — witness atom order {order:?}");
            println!("\nRows permuted into the witness order:");
            // permute rows: row i of the display = atom order[i]
            let m = ens.to_matrix();
            for &a in &order {
                let mut line = String::new();
                for c in 0..m.n_cols() {
                    line.push(if m.get(a as usize, c) { '1' } else { '0' });
                }
                println!("{line}   <- atom {a}");
            }
            println!("\nEvery column now shows one contiguous block of ones.");
        }
        Err(rej) => println!("\nC1P: no (evidence atoms {:?})", rej.atoms),
    }

    // A non-example: Tucker's M_IV embedded in a larger satisfiable
    // context. The certified driver names the obstruction, and
    // `verify_witness` re-checks it without consulting the solver.
    let bad = c1p::matrix::tucker::embed_obstruction(
        &c1p::matrix::tucker::m_iv(),
        12,
        3,
        &[(0, 5), (6, 6)],
    );
    match c1p::solve_certified(&bad) {
        Ok(_) => unreachable!("embedded obstructions are never realizable"),
        Err(cert) => {
            println!("\nEmbedded-M_IV instance is C1P? no");
            println!("witness: {}", cert.witness);
            c1p::cert::verify_witness(&bad, &cert.witness)
                .expect("certificates always verify independently");
            println!("verify_witness: certificate checks out (solver not consulted)");
        }
    }
}

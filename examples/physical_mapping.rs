//! Physical mapping of a synthetic genome (the paper's Section 1.1).
//!
//! ```text
//! cargo run --release --example physical_mapping [n_sts] [n_clones]
//! ```
//!
//! A clone library is fingerprinted against STS probes; the STS order is
//! recovered by consecutive-ones testing. We simulate a genome at the shape
//! the paper cites (default: reduced from 18 000 clones × 9 000 STSs for a
//! quick run), solve the clean library, and then show how the error types
//! the paper lists (false positives/negatives, chimeric clones) make the
//! solver *reject* the corrupted data — the detection behaviour motivating
//! the paper's interest in fast C1P subroutines.

use c1p::matrix::biology::CloneLibrary;
use c1p::matrix::{noise, verify_linear};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_sts: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3_000);
    let n_clones: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2 * 3_000);
    let mut rng = SmallRng::seed_from_u64(2026);

    let lib = CloneLibrary { n_sts, n_clones, mean_clone_span: 12, scramble: true };
    let (ens, hidden) = lib.sample(&mut rng);
    println!(
        "clone library: {} STSs x {} clones, p = {} ones (paper cites 9-15k x 18-25k)",
        ens.n_atoms(),
        ens.n_columns(),
        ens.p()
    );

    let t0 = Instant::now();
    let order = c1p::solve(&ens).expect("clean fingerprints are always consistent");
    let elapsed = t0.elapsed();
    verify_linear(&ens, &order).unwrap();
    println!("map recovered in {elapsed:?}: every clone covers a contiguous STS run");

    // The recovered map is the hidden genome order up to reversal *within
    // connected stretches*; report how much of the hidden adjacency we got.
    let mut hidden_next = vec![u32::MAX; n_sts];
    for w in hidden.windows(2) {
        hidden_next[w[0] as usize] = w[1];
    }
    let mut adjacent_ok = 0;
    for w in order.windows(2) {
        if hidden_next[w[0] as usize] == w[1] || hidden_next[w[1] as usize] == w[0] {
            adjacent_ok += 1;
        }
    }
    println!(
        "adjacency agreement with the hidden genome: {adjacent_ok}/{} consecutive pairs",
        n_sts - 1
    );

    // Error models of Section 1.1: each typically destroys consistency.
    for (name, noisy) in [
        ("2 false positives", noise::false_positives(&ens, 2, &mut rng)),
        ("5 false negatives", noise::false_negatives(&ens, 5, &mut rng)),
        ("1 chimeric clone", noise::chimerize(&ens, 1, &mut rng)),
    ] {
        let t0 = Instant::now();
        let verdict = c1p::solve(&noisy).is_ok();
        println!(
            "with {name}: consistent map {} (decided in {:?})",
            if verdict { "still exists" } else { "NO LONGER exists -> error detected" },
            t0.elapsed()
        );
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements exactly the surface the workspace uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64, like upstream's `small_rng`
//! feature), [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over integer and float ranges. Streams are
//! deterministic in the seed but are **not** bit-compatible with
//! upstream `rand`; everything in this workspace only relies on
//! seed-determinism, never on specific values.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. (Upstream splits this into
/// `RngCore` + `Rng`; all our call sites bound on `Rng` only.)
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface: everything here seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods on any [`Rng`] (upstream's `Rng`/`RngExt` split).
pub trait RngExt: Rng {
    /// Uniform sample from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded sample in `0..bound` (`bound > 0`).
fn bounded(rng: &mut impl Rng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // rejection sampling on the top zone to remove modulo bias
    let zone = u64::MAX - u64::MAX.wrapping_rem(bound).wrapping_add(bound) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone || zone == u64::MAX {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the same generator upstream `SmallRng` uses on
    /// 64-bit targets. Small state, sub-nanosecond steps, fine quality
    /// for workload generation (not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub use rngs::SmallRng as StdRng;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5..=5u32);
            assert_eq!(y, 5);
            let f = rng.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_whole_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access; this crate implements
//! the subset of criterion's API the workspace's benches use, with a
//! simple but honest measurement loop: warm-up, auto-calibrated batch
//! size (so timer overhead stays < 1%), `sample_size` samples, and a
//! median + min/max report with optional throughput. Benchmark names
//! can be filtered with a positional CLI substring, like criterion.
//!
//! Set `CRITERION_JSON=<path>` to additionally append one JSON line per
//! benchmark (`{"id": ..., "ns_per_iter": ...}`) for machine-readable
//! perf tracking.

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `function/parameter` benchmark id.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// The harness: owns the CLI filter and global defaults.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a harness honoring the first positional CLI argument as a
    /// name filter (flags like `--bench` that cargo passes are skipped).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let filter = self.filter.clone();
        BenchmarkGroup { _c: self, name: name.into(), sample_size: 20, throughput: None, filter }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let filter = self.filter.clone();
        let mut g = self.benchmark_group("");
        g.filter = filter;
        g.bench_function(id, f);
        g.finish();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: Option<String>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let full = self.full_name(&id.into());
        if self.skipped(&full) {
            return;
        }
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b));
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = self.full_name(&id.into());
        if self.skipped(&full) {
            return;
        }
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
    }

    pub fn finish(&mut self) {}

    fn full_name(&self, id: &BenchmarkId) -> String {
        if self.name.is_empty() {
            id.name.clone()
        } else {
            format!("{}/{}", self.name, id.name)
        }
    }

    fn skipped(&self, full: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !full.contains(f))
    }
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    /// ns per iteration of each recorded sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // warm-up: run until ~200ms or 3 iterations, whichever is later,
        // and estimate the per-iteration time
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(200) {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 3 && warm_start.elapsed() > Duration::from_secs(2) {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        // batch so one sample takes ≥ ~5ms (timer noise ≪ signal)
        let batch = ((5e6 / est_ns).ceil() as u64).clamp(1, 1 << 24);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// criterion's `iter_batched` (routine gets a fresh input each time);
    /// the setup cost is excluded only approximately (run outside timing).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            const BATCH: usize = 16;
            let inputs: Vec<I> = (0..BATCH).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(t0.elapsed().as_nanos() as f64 / BATCH as f64);
        }
    }
}

/// Batch-size hint (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_benchmark(
    full: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full:<48} (no samples recorded)");
        return;
    }
    b.samples.sort_by(|a, x| a.partial_cmp(x).unwrap());
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {}/s", fmt_rate(n as f64 / (median / 1e9))),
        Throughput::Bytes(n) => format!("  thrpt: {}B/s", fmt_rate(n as f64 / (median / 1e9))),
    });
    println!(
        "{full:<48} time: [{} {} {}]{}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi),
        rate.unwrap_or_default()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(file, "{{\"id\": \"{full}\", \"ns_per_iter\": {median:.1}}}");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher { samples: Vec::new(), sample_size: 3 };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("dc", 1024).name, "dc/1024");
    }
}

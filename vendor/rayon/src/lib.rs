//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the rayon API the workspace uses, with the same
//! semantics *and* real wall-clock parallelism:
//!
//! * a work-stealing pool per [`ThreadPool`] (plus a lazily-built
//!   hardware-sized global pool): per-worker deques with LIFO owner
//!   access and FIFO stealing, a shared injector for external
//!   submissions, and blocked joiners that execute stolen jobs while
//!   they wait (`registry.rs`);
//! * [`join`] publishes its second closure for stealing and reclaims it
//!   inline when no thief took it — the Cilk discipline, so a
//!   single-thread pool degrades to exactly the sequential execution;
//! * the iterator combinators (`par_iter`, `into_par_iter`,
//!   `par_chunks_mut`, `par_sort_unstable_by_key`, …) are **genuinely
//!   parallel**: exact-length splittable producers recursively halved
//!   over `join` down to a `len / (threads × 4)` grain (`iter.rs`), and
//!   a fork-join mergesort for the sorts (`sort.rs`). `DESIGN.md §6`
//!   records the scheduler design and measured speedups.
//! * [`ThreadPoolBuilder`]/[`ThreadPool::install`] scope the *current*
//!   registry, observed by [`current_num_threads`], `join`, and every
//!   combinator — the E3 experiments control thread counts with it.

mod iter;
mod registry;
mod sort;

pub use iter::{IntoParallelIterator, ParIter, ParSliceExt, Producer};

use registry::Registry;
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Registry stack installed by [`ThreadPool::install`]; worker
    /// threads seed it with their own registry so nested parallelism
    /// inside jobs stays on the same pool.
    static CURRENT: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

fn current_registry() -> Arc<Registry> {
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .unwrap_or_else(|| registry::global_registry().clone())
}

pub(crate) fn set_current_registry(reg: &Arc<Registry>) {
    CURRENT.with(|c| c.borrow_mut().push(Arc::clone(reg)));
}

/// The number of worker threads of the current pool.
pub fn current_num_threads() -> usize {
    current_registry().num_threads()
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// `b` is published to the current pool's scheduler while `a` runs on
/// the calling thread; if no worker stole `b` it is reclaimed and run
/// inline. On a single-thread pool both closures simply run in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = current_registry();
    if registry.num_threads() <= 1 {
        return (a(), b());
    }
    registry.join(a, b)
}

/// Runs `op` within a scope. `spawn`ed tasks run immediately (the one
/// combinator this shim keeps sequential — the workspace never spawns
/// detached scope tasks; `join` and the iterator combinators carry all
/// the parallelism).
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    op(&Scope { _p: std::marker::PhantomData })
}

/// Scope handle; see [`scope`].
pub struct Scope<'scope> {
    _p: std::marker::PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        f(self);
    }
}

// ---------------------------------------------------------------------
// thread pools
// ---------------------------------------------------------------------

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for pool construction (construction never fails here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 means "default parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        let (registry, handles) = Registry::new(n);
        Ok(ThreadPool { registry, handles })
    }
}

/// A pool of worker threads with its own work-stealing registry.
#[derive(Debug)]
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("n_threads", &self.num_threads()).finish()
    }
}

impl ThreadPool {
    /// Runs `f` with this pool installed as the current one: `join` and
    /// the iterator combinators inside `f` schedule onto this pool.
    /// The previous pool is restored even if `f` panics (a leaked
    /// registry entry would leave the thread scheduling onto a
    /// terminated pool forever).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                CURRENT.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        set_current_registry(&self.registry);
        let _guard = PopGuard;
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParSliceExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_nests() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    #[test]
    fn join_sides_run_concurrently_on_a_pool() {
        // Cross-handshake: each side signals and then waits for the
        // other. Completes only if the sides genuinely interleave
        // (worker + joining thread), on any core count.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let fa = AtomicBool::new(false);
        let fb = AtomicBool::new(false);
        let wait = |flag: &AtomicBool| {
            for _ in 0..1_000_000 {
                if flag.load(Ordering::SeqCst) {
                    return true;
                }
                std::thread::yield_now();
            }
            false
        };
        let (sa, sb) = pool.install(|| {
            join(
                || {
                    fa.store(true, Ordering::SeqCst);
                    wait(&fb)
                },
                || {
                    fb.store(true, Ordering::SeqCst);
                    wait(&fa)
                },
            )
        });
        assert!(sa && sb, "join sides must make progress concurrently");
    }

    #[test]
    fn join_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| join(|| 1, || panic!("boom")))
        }));
        assert!(caught.is_err(), "stolen-side panic must propagate to the joiner");
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = pool.install(|| {
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            inner.install(current_num_threads)
        });
        assert_eq!(nested, 2);
    }

    #[test]
    fn combinators_match_std() {
        let xs = [3u64, 1, 4, 1, 5];
        let doubled: Vec<u64> = xs.par_iter().with_min_len(2).map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let total: u64 = (0..100u64).into_par_iter().sum();
        assert_eq!(total, 4950);
        let mut ys = vec![5u32, 2, 9];
        ys.par_sort_unstable_by_key(|&y| y);
        assert_eq!(ys, vec![2, 5, 9]);
        let any_changed = xs.par_iter().map(|&x| x > 4).reduce(|| false, |a, b| a | b);
        assert!(any_changed);
        let (evens, odds): (Vec<u64>, Vec<u64>) =
            (0..10u64).into_par_iter().map(|x| (x * 2, x * 2 + 1)).unzip();
        assert_eq!(evens, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
        assert_eq!(odds, vec![1, 3, 5, 7, 9, 11, 13, 15, 17, 19]);
    }

    #[test]
    fn combinators_match_std_on_a_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let n = 100_000u64;
            let total: u64 = (0..n).into_par_iter().with_min_len(64).sum();
            assert_eq!(total, n * (n - 1) / 2);
            let xs: Vec<u64> = (0..n).collect();
            let mapped: Vec<u64> = xs.par_iter().with_min_len(64).map(|&x| x + 1).collect();
            assert!(mapped.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
            let mx = xs.par_iter().map(|&x| x).max_by(|a, b| a.cmp(b));
            assert_eq!(mx, Some(n - 1));
            let mut buf = vec![0u64; 1000];
            buf.par_chunks_mut(64).enumerate().for_each(|(c, chunk)| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = (c * 64 + i) as u64;
                }
            });
            assert!(buf.iter().enumerate().all(|(i, &v)| v == i as u64));
        });
    }

    #[test]
    fn parallel_sort_matches_std() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let mut xs: Vec<u64> =
                (0..60_000u64).map(|i| i.wrapping_mul(0x9E37_79B9) % 10_007).collect();
            let mut expect = xs.clone();
            expect.sort_unstable();
            xs.par_sort_unstable_by_key(|&x| x);
            assert_eq!(xs, expect);
        });
    }

    #[test]
    fn work_distributes_and_completes_under_contention() {
        // many concurrent fork-joins on one pool — a scheduler smoke test
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.install(|| {
            (0..1000usize).into_par_iter().with_min_len(1).for_each(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }
}

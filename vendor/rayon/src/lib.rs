//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the rayon API the workspace uses with the same
//! semantics:
//!
//! * [`join`] is **genuinely parallel**: it runs the left closure on a
//!   scoped OS thread whenever the active-thread budget (the configured
//!   pool size) allows, and degrades to sequential execution otherwise.
//!   The divide-and-conquer solver gets real multicore speedup through
//!   this single primitive.
//! * The iterator combinators (`par_iter`, `into_par_iter`,
//!   `par_chunks_mut`, `par_sort_unstable_by_key`, …) are sequential
//!   adapters with rayon's signatures. The PRAM primitives built on them
//!   remain correct and keep their modelled costs; only their wall-clock
//!   parallelism is reduced. `DESIGN.md §6` records this trade-off.
//! * [`ThreadPoolBuilder`]/[`ThreadPool::install`] set a scoped budget
//!   that [`current_num_threads`] and [`join`] observe, so the E3
//!   speedup experiments still control thread counts.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------
// thread budget
// ---------------------------------------------------------------------

/// Extra OS threads currently live across every `join` on this process.
static ACTIVE_EXTRA: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Pool size installed by [`ThreadPool::install`]; 0 = default.
    static POOL_SIZE: Cell<usize> = const { Cell::new(0) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The number of worker threads the "current pool" would use.
pub fn current_num_threads() -> usize {
    let installed = POOL_SIZE.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        hardware_threads()
    }
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// `a` is shipped to a scoped thread when the process-wide budget
/// (`current_num_threads() - 1` extra threads) has room; otherwise both
/// closures run sequentially on the caller, exactly like rayon under
/// full load.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = current_num_threads().saturating_sub(1);
    let mut reserved = false;
    let mut cur = ACTIVE_EXTRA.load(Ordering::Relaxed);
    while cur < budget {
        match ACTIVE_EXTRA.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                reserved = true;
                break;
            }
            Err(now) => cur = now,
        }
    }
    if !reserved {
        return (a(), b());
    }
    let pool = POOL_SIZE.with(Cell::get);
    let out = std::thread::scope(|s| {
        let ha = s.spawn(move || {
            POOL_SIZE.with(|p| p.set(pool));
            a()
        });
        let rb = b();
        (ha.join().expect("joined closure panicked"), rb)
    });
    ACTIVE_EXTRA.fetch_sub(1, Ordering::Relaxed);
    out
}

/// Runs `op` within a scope (sequential shim: just calls it).
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    op(&Scope { _p: std::marker::PhantomData })
}

/// Sequential scope handle; `spawn` runs the task immediately.
pub struct Scope<'scope> {
    _p: std::marker::PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        f(self);
    }
}

// ---------------------------------------------------------------------
// thread pools
// ---------------------------------------------------------------------

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for pool construction (construction never fails here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 means "default parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { hardware_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool": a scoped thread budget that `join` consults.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool installed as the current one.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_SIZE.with(|p| p.replace(self.num_threads));
        let out = f();
        POOL_SIZE.with(|p| p.set(prev));
        out
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------
// "parallel" iterators (sequential adapters with rayon's signatures)
// ---------------------------------------------------------------------

/// Wrapper giving std iterators rayon's combinator surface.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Chunking hint — a no-op for the sequential adapter.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    pub fn for_each(self, f: impl FnMut(I::Item)) {
        self.0.for_each(f);
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
    where
        I: Iterator<Item = (A, B)>,
        FromA: Default + Extend<A>,
        FromB: Default + Extend<B>,
    {
        self.0.unzip()
    }

    /// rayon's `reduce`: fold from an identity-producing closure.
    pub fn reduce<T, ID, OP>(mut self, identity: ID, op: OP) -> T
    where
        I: Iterator<Item = T>,
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        let mut acc = identity();
        for x in self.0.by_ref() {
            acc = op(acc, x);
        }
        acc
    }

    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.max_by(f)
    }

    pub fn min_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.min_by(f)
    }
}

/// `.par_iter()` / `.par_chunks_mut()` on slice-like containers.
pub trait ParSliceExt<T> {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }

    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_by_key(key);
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = std::ops::Range<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParSliceExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_nests() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn join_runs_in_parallel_when_budget_allows() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::Duration;
        if current_num_threads() < 2 {
            return; // single-core CI runner: nothing to assert
        }
        let flag = AtomicBool::new(false);
        let (_, waited) = join(
            || flag.store(true, Ordering::SeqCst),
            || {
                // wait (bounded) for the left side to run concurrently
                for _ in 0..1000 {
                    if flag.load(Ordering::SeqCst) {
                        return true;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                flag.load(Ordering::SeqCst)
            },
        );
        assert!(waited, "left closure should have run on its own thread");
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = pool.install(|| {
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            inner.install(current_num_threads)
        });
        assert_eq!(nested, 2);
    }

    #[test]
    fn sequential_adapters_match_std() {
        let xs = [3u64, 1, 4, 1, 5];
        let doubled: Vec<u64> = xs.par_iter().with_min_len(2).map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let total: u64 = (0..100u64).into_par_iter().sum();
        assert_eq!(total, 4950);
        let mut ys = vec![5u32, 2, 9];
        ys.par_sort_unstable_by_key(|&y| y);
        assert_eq!(ys, vec![2, 5, 9]);
        let any_changed = xs.par_iter().map(|&x| x > 4).reduce(|| false, |a, b| a | b);
        assert!(any_changed);
    }
}

//! Parallel merge sort (the slice `par_sort_*_by_key` entry points).
//!
//! Fork-join mergesort over `Copy` payloads: halves sort in parallel
//! down to a sequential cutoff (std's pattern-defeating quicksort),
//! then pairs merge out-of-place into a scratch buffer. The merge is
//! stable, so `par_sort_by_key` and `par_sort_unstable_by_key` share
//! it. Requiring `T: Copy` keeps every move a plain memcpy — no drop
//! obligations to track across panics — and covers every payload the
//! workspace sorts (index/key records).

/// Below this many elements (or on a single-thread pool) sorting is
/// handed straight to std.
const SEQ_SORT_CUTOFF: usize = 1 << 13;

pub(crate) fn par_mergesort_by_key<T, K, F>(xs: &mut [T], key: &F)
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = xs.len();
    if n <= SEQ_SORT_CUTOFF || crate::current_num_threads() <= 1 {
        xs.sort_by_key(|t| key(t));
        return;
    }
    let mut buf: Vec<T> = xs.to_vec();
    let splits = (crate::current_num_threads() * 2).next_power_of_two();
    sort_rec(xs, &mut buf, key, splits);
}

fn sort_rec<T, K, F>(xs: &mut [T], buf: &mut [T], key: &F, splits: usize)
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    if splits <= 1 || xs.len() <= SEQ_SORT_CUTOFF {
        xs.sort_by_key(|t| key(t));
        return;
    }
    let mid = xs.len() / 2;
    let (xl, xr) = xs.split_at_mut(mid);
    let (bl, br) = buf.split_at_mut(mid);
    crate::join(|| sort_rec(xl, bl, key, splits / 2), || sort_rec(xr, br, key, splits / 2));
    merge_halves(xs, mid, buf, key);
}

/// Stable merge of `xs[..mid]` and `xs[mid..]` through `buf`.
fn merge_halves<T, K, F>(xs: &mut [T], mid: usize, buf: &mut [T], key: &F)
where
    T: Copy,
    K: Ord,
    F: Fn(&T) -> K,
{
    {
        let (left, right) = xs.split_at(mid);
        let (mut i, mut j) = (0, 0);
        for slot in buf.iter_mut() {
            if j >= right.len() || (i < left.len() && key(&left[i]) <= key(&right[j])) {
                *slot = left[i];
                i += 1;
            } else {
                *slot = right[j];
                j += 1;
            }
        }
    }
    xs.copy_from_slice(buf);
}

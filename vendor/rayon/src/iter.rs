//! Data-parallel iterators over indexed sources, executed with
//! fork-join splitting on the work-stealing pool.
//!
//! Everything is built on one [`Producer`] abstraction: an exact-length
//! source that can be split at an index. Consumers (`for_each`,
//! `collect`, `sum`, `reduce`, …) recursively halve the producer with
//! [`crate::join`] until pieces reach the scheduling grain, then drain
//! sequentially. The grain is `max(with_min_len, len / (threads × 4))`:
//! enough pieces for the steal scheduler to balance, never so many that
//! task overhead dominates — and a single-thread registry degrades to a
//! plain sequential loop with no task machinery at all.

use std::mem::MaybeUninit;
use std::sync::Arc;

/// An exact-length, splittable source of items.
pub trait Producer: Send + Sized {
    type Item: Send;
    /// Sequential iterator draining this producer.
    type SeqIter: Iterator<Item = Self::Item>;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    fn into_seq_iter(self) -> Self::SeqIter;
}

/// A parallel iterator: a producer plus the minimum sequential grain.
pub struct ParIter<P> {
    producer: P,
    min_len: usize,
}

pub(crate) fn par_iter_of<P: Producer>(producer: P) -> ParIter<P> {
    ParIter { producer, min_len: 1 }
}

/// The sequential grain for `n` items under the current pool.
fn grain(n: usize, min_len: usize) -> usize {
    let threads = crate::current_num_threads();
    min_len.max(n / (threads * 4).max(1)).max(1)
}

impl<P: Producer> ParIter<P> {
    /// Minimum number of items a sequential piece processes.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    pub fn map<U: Send, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        F: Fn(P::Item) -> U + Send + Sync,
    {
        ParIter { producer: Map { base: self.producer, f: Arc::new(f) }, min_len: self.min_len }
    }

    pub fn enumerate(self) -> ParIter<Enumerate<P>> {
        ParIter { producer: Enumerate { base: self.producer, offset: 0 }, min_len: self.min_len }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        fn go<P: Producer, F: Fn(P::Item) + Send + Sync>(p: P, grain: usize, f: &F) {
            if p.len() <= grain {
                p.into_seq_iter().for_each(f);
                return;
            }
            let mid = p.len() / 2;
            let (left, right) = p.split_at(mid);
            crate::join(|| go(left, grain, f), || go(right, grain, f));
        }
        let g = grain(self.producer.len(), self.min_len);
        go(self.producer, g, &f);
    }

    /// Ordered parallel collect. Exact-length producers write straight
    /// into the output buffer, piece by piece, with no merge copies.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        C::from_iter(self.collect_vec())
    }

    fn collect_vec(self) -> Vec<P::Item> {
        fn fill<P: Producer>(p: P, grain: usize, out: &mut [MaybeUninit<P::Item>]) {
            debug_assert_eq!(p.len(), out.len());
            if p.len() <= grain {
                for (slot, item) in out.iter_mut().zip(p.into_seq_iter()) {
                    slot.write(item);
                }
                return;
            }
            let mid = p.len() / 2;
            let (pl, pr) = p.split_at(mid);
            let (ol, or) = out.split_at_mut(mid);
            crate::join(|| fill(pl, grain, ol), || fill(pr, grain, or));
        }
        let n = self.producer.len();
        let g = grain(n, self.min_len);
        let mut out: Vec<MaybeUninit<P::Item>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit needs no initialization; `fill` writes
        // every slot exactly once before the transmute below. (A panic
        // mid-fill leaks already-written items instead of dropping them
        // — safe, and irrelevant for the Copy payloads used here.)
        unsafe { out.set_len(n) };
        fill(self.producer, g, &mut out);
        // SAFETY: all `n` slots are initialized; MaybeUninit<T> has T's
        // layout, so casting the data pointer is sound. Rebuilt via
        // from_raw_parts rather than transmuting the Vec itself (Vec
        // transmutes are documented UB even for layout-identical
        // element types).
        let mut out = std::mem::ManuallyDrop::new(out);
        unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut P::Item, n, out.capacity()) }
    }

    /// rayon's `reduce`: fold pieces from an identity, combine with `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        fn go<P, ID, OP>(p: P, grain: usize, identity: &ID, op: &OP) -> P::Item
        where
            P: Producer,
            ID: Fn() -> P::Item + Send + Sync,
            OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
        {
            if p.len() <= grain {
                return p.into_seq_iter().fold(identity(), op);
            }
            let mid = p.len() / 2;
            let (left, right) = p.split_at(mid);
            let (ra, rb) =
                crate::join(|| go(left, grain, identity, op), || go(right, grain, identity, op));
            op(ra, rb)
        }
        let g = grain(self.producer.len(), self.min_len);
        go(self.producer, g, &identity, &op)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        fn go<P: Producer, S>(p: P, grain: usize) -> S
        where
            S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
        {
            if p.len() <= grain {
                return p.into_seq_iter().sum();
            }
            let mid = p.len() / 2;
            let (left, right) = p.split_at(mid);
            let (ra, rb) = crate::join(|| go::<P, S>(left, grain), || go::<P, S>(right, grain));
            [ra, rb].into_iter().sum()
        }
        let g = grain(self.producer.len(), self.min_len);
        go::<P, S>(self.producer, g)
    }

    pub fn max_by<F>(self, f: F) -> Option<P::Item>
    where
        F: Fn(&P::Item, &P::Item) -> std::cmp::Ordering + Send + Sync,
    {
        fn go<P: Producer, F>(p: P, grain: usize, f: &F) -> Option<P::Item>
        where
            F: Fn(&P::Item, &P::Item) -> std::cmp::Ordering + Send + Sync,
        {
            if p.len() <= grain {
                return p.into_seq_iter().max_by(f);
            }
            let mid = p.len() / 2;
            let (left, right) = p.split_at(mid);
            let (ra, rb) = crate::join(|| go(left, grain, f), || go(right, grain, f));
            match (ra, rb) {
                (Some(a), Some(b)) => {
                    // keep rayon/std semantics: later element wins ties
                    Some(if f(&a, &b) == std::cmp::Ordering::Greater { a } else { b })
                }
                (a, b) => a.or(b),
            }
        }
        let g = grain(self.producer.len(), self.min_len);
        go(self.producer, g, &f)
    }

    pub fn min_by<F>(self, f: F) -> Option<P::Item>
    where
        F: Fn(&P::Item, &P::Item) -> std::cmp::Ordering + Send + Sync,
    {
        self.max_by(move |a, b| f(b, a))
    }

    /// Parallel compute, sequential unzip of the collected pairs (the
    /// expensive half — the map — runs on the pool).
    pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
    where
        P: Producer<Item = (A, B)>,
        A: Send,
        B: Send,
        FromA: Default + Extend<A>,
        FromB: Default + Extend<B>,
    {
        let pairs = self.collect_vec();
        let mut out_a = FromA::default();
        let mut out_b = FromB::default();
        for (a, b) in pairs {
            out_a.extend(std::iter::once(a));
            out_b.extend(std::iter::once(b));
        }
        (out_a, out_b)
    }
}

// ---------------------------------------------------------------------
// adapters
// ---------------------------------------------------------------------

/// Mapping adapter; the closure is shared across pieces via `Arc`.
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, U, F> Producer for Map<P, F>
where
    P: Producer,
    U: Send,
    F: Fn(P::Item) -> U + Send + Sync,
{
    type Item = U;
    type SeqIter = MapSeqIter<P::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (Map { base: l, f: Arc::clone(&self.f) }, Map { base: r, f: self.f })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        MapSeqIter { inner: self.base.into_seq_iter(), f: self.f }
    }
}

pub struct MapSeqIter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, U, F> Iterator for MapSeqIter<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> U,
{
    type Item = U;

    fn next(&mut self) -> Option<U> {
        self.inner.next().map(|x| (self.f)(x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Enumerating adapter: global indices survive splitting via `offset`.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    type SeqIter = EnumerateSeqIter<P::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Enumerate { base: l, offset: self.offset },
            Enumerate { base: r, offset: self.offset + mid },
        )
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        EnumerateSeqIter { inner: self.base.into_seq_iter(), next: self.offset }
    }
}

pub struct EnumerateSeqIter<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeqIter<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<(usize, I::Item)> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

// ---------------------------------------------------------------------
// sources
// ---------------------------------------------------------------------

/// Shared-slice source.
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(mid);
        (SliceProducer { slice: l }, SliceProducer { slice: r })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// Disjoint mutable chunks of a slice; `len` counts chunks.
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ChunksMutProducer { slice: l, chunk: self.chunk },
            ChunksMutProducer { slice: r, chunk: self.chunk },
        )
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.chunk)
    }
}

/// Owned-vector source; splitting reallocates the tail piece once.
pub struct VecProducer<T> {
    vec: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.vec.split_off(mid);
        (self, VecProducer { vec: tail })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.vec.into_iter()
    }
}

/// Integer-range source (macro-instantiated per index type).
pub struct RangeProducer<T> {
    range: std::ops::Range<T>,
}

macro_rules! range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type SeqIter = std::ops::Range<$t>;

            fn len(&self) -> usize {
                (self.range.end.saturating_sub(self.range.start)) as usize
            }

            fn split_at(self, mid: usize) -> (Self, Self) {
                let at = self.range.start + mid as $t;
                (
                    RangeProducer { range: self.range.start..at },
                    RangeProducer { range: at..self.range.end },
                )
            }

            fn into_seq_iter(self) -> Self::SeqIter {
                self.range
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Producer = RangeProducer<$t>;

            fn into_par_iter(self) -> ParIter<RangeProducer<$t>> {
                par_iter_of(RangeProducer { range: self })
            }
        }
    )*};
}

range_producer!(u32, u64, usize);

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    type Producer: Producer<Item = Self::Item>;

    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;

    fn into_par_iter(self) -> ParIter<VecProducer<T>> {
        par_iter_of(VecProducer { vec: self })
    }
}

/// `.par_iter()` / `.par_chunks_mut()` / parallel sorts on slices.
pub trait ParSliceExt<T> {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>
    where
        T: Sync;

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>>
    where
        T: Send;

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        T: Copy + Send + Sync,
        K: Ord,
        F: Fn(&T) -> K + Sync;

    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        T: Copy + Send + Sync,
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>
    where
        T: Sync,
    {
        par_iter_of(SliceProducer { slice: self })
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>>
    where
        T: Send,
    {
        assert!(size > 0, "chunk size must be positive");
        par_iter_of(ChunksMutProducer { slice: self, chunk: size })
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        T: Copy + Send + Sync,
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        crate::sort::par_mergesort_by_key(self, &key);
    }

    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        T: Copy + Send + Sync,
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        // the mergesort is stable, so both entry points share it
        crate::sort::par_mergesort_by_key(self, &key);
    }
}

//! The work-stealing pool: worker threads, per-worker deques, a shared
//! injector, and the stack-job/latch machinery `join` is built on.
//!
//! Layout (classic shared-injector + per-worker-deque scheduler):
//!
//! * every [`Registry`] owns `n` worker threads, each with its own deque
//!   (LIFO for the owner, FIFO for thieves — oldest jobs are stolen
//!   first, so the biggest subtrees migrate);
//! * threads that are not workers of the registry (the main thread, a
//!   different pool's workers) submit through the shared injector;
//! * a blocked `join` *works while it waits*: it executes stolen jobs
//!   until its own job's latch trips, so the pool never idles while any
//!   runnable work exists.
//!
//! The deques are mutex-protected `VecDeque`s rather than lock-free
//! Chase–Lev deques: tasks here are coarse (a divide step, a scan
//! chunk), so queue operations are nowhere near the contention regime
//! where lock-freedom pays, and the mutex version is trivially sound.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// How long an idle worker parks between queue re-checks. Wake-ups are
/// also signalled eagerly on every push; the timeout only bounds the
/// window of the (benign) check-then-park race.
const PARK_TIMEOUT: Duration = Duration::from_micros(500);

// ---------------------------------------------------------------------
// jobs
// ---------------------------------------------------------------------

/// A type-erased pointer to a job waiting in some queue. The pointee
/// (a [`StackJob`] on a joining thread's stack, kept alive until its
/// latch trips) outlives the reference by construction.
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: the job closures are `Send`; the pointer is only dereferenced
// by `execute`, on exactly one thread.
unsafe impl Send for JobRef {}

impl JobRef {
    /// SAFETY: must be called at most once, while the pointee is alive.
    pub(crate) unsafe fn execute(self) {
        unsafe { (self.execute_fn)(self.data) }
    }
}

/// A once-settable flag a waiter can poll. `set` publishes with
/// `Release` so the job's result (written just before) is visible to
/// any `probe`-ing thread.
pub(crate) struct Latch {
    set: AtomicBool,
}

impl Latch {
    pub(crate) fn new() -> Latch {
        Latch { set: AtomicBool::new(false) }
    }

    pub(crate) fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    pub(crate) fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

enum JobResult<R> {
    Pending,
    Ok(R),
    Panicked(Box<dyn std::any::Any + Send>),
}

/// A job whose closure and result live on the stack of the thread that
/// created it (the joining thread), referenced from the queues through a
/// raw [`JobRef`].
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    pub(crate) latch: Latch,
}

// SAFETY: accessed by at most one executor, then (after the latch) by
// the owner; the latch's Release/Acquire pair orders the handoff.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> StackJob<F, R> {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
            latch: Latch::new(),
        }
    }

    /// SAFETY: caller must keep `self` alive until the latch trips.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        unsafe fn execute_job<F, R>(data: *const ())
        where
            F: FnOnce() -> R + Send,
            R: Send,
        {
            let job = unsafe { &*(data as *const StackJob<F, R>) };
            job.run();
        }
        JobRef { data: self as *const _ as *const (), execute_fn: execute_job::<F, R> }
    }

    /// Runs the closure and publishes the result through the latch.
    /// Called exactly once — by a thief via the [`JobRef`], or by the
    /// owner if it reclaimed the job from its own deque.
    pub(crate) fn run(&self) {
        let func = unsafe { (*self.func.get()).take().expect("job executed twice") };
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(payload) => JobResult::Panicked(payload),
        };
        unsafe { *self.result.get() = result };
        self.latch.set();
    }

    /// Takes the result after the latch has tripped (or after `run` on
    /// the owning thread), resuming the job's panic if it had one.
    pub(crate) fn into_result(self) -> R {
        match self.result.into_inner() {
            JobResult::Ok(r) => r,
            JobResult::Panicked(payload) => panic::resume_unwind(payload),
            JobResult::Pending => unreachable!("result taken before the job ran"),
        }
    }
}

// ---------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------

pub(crate) struct Registry {
    /// Per-worker deques (owner pushes/pops the back, thieves the front).
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Submissions from threads that are not workers of this registry.
    injector: Mutex<VecDeque<JobRef>>,
    sleep_mutex: Mutex<()>,
    sleep_cv: Condvar,
    /// Threads currently parked (or about to park) on `sleep_cv`.
    /// Pushers and completers skip the wake lock entirely while this is
    /// zero — the common busy-pool case — so the single sleep mutex
    /// never becomes a scalability cap for fine-grained task streams.
    sleepers: AtomicUsize,
    terminate: AtomicBool,
    n_threads: usize,
}

thread_local! {
    /// Set on worker threads: (owning registry, worker index). Raw
    /// pointer — the worker's `Arc` keeps the registry alive for the
    /// thread's whole life.
    static WORKER: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-default registry, sized to the hardware.
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(hardware_threads()).0)
}

impl Registry {
    /// Builds a registry and spawns its workers; returns the join
    /// handles so pool owners can reap them on drop.
    pub(crate) fn new(n_threads: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let n = n_threads.max(1);
        let registry = Arc::new(Registry {
            deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep_mutex: Mutex::new(()),
            sleep_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            terminate: AtomicBool::new(false),
            n_threads: n,
        });
        let handles = (0..n)
            .map(|index| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("c1p-rayon-{index}"))
                    .spawn(move || worker_main(reg, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (registry, handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.n_threads
    }

    /// The calling thread's worker index in *this* registry, if any.
    fn local_index(&self) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((reg, index)) if std::ptr::eq(reg, self) => Some(index),
            _ => None,
        })
    }

    /// Queues a job: on the owner's own deque when called from one of
    /// this registry's workers, otherwise through the injector.
    pub(crate) fn push(&self, job: JobRef) {
        match self.local_index() {
            Some(index) => self.deques[index].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        // eager wake; PARK_TIMEOUT bounds the residual check-park race
        self.notify();
    }

    /// Reclaims the newest job of the caller's own deque, if present.
    /// `join` uses this to run its second closure inline when no thief
    /// took it (the common case, preserving sequential-like locality).
    fn pop_local(&self) -> Option<JobRef> {
        let index = self.local_index()?;
        self.deques[index].lock().unwrap().pop_back()
    }

    /// Finds a runnable job: own deque first (newest — depth-first),
    /// then the injector, then other workers' deques (oldest — the
    /// steal half of work-stealing).
    fn find_work(&self) -> Option<JobRef> {
        let local = self.local_index();
        if let Some(index) = local {
            if let Some(job) = self.deques[index].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let start = local.map_or(0, |i| i + 1);
        for k in 0..self.deques.len() {
            let victim = (start + k) % self.deques.len();
            if Some(victim) == local {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Wakes parked waiters (called after a push, and after any job
    /// completes, since that may have tripped a latch someone is parked
    /// on). No-op — no lock taken — while nobody is parked.
    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_mutex.lock().unwrap();
            self.sleep_cv.notify_all();
        }
    }

    /// Parks the calling thread until a wake-up or the timeout, unless
    /// `should_return` already holds (checked under the sleep lock, with
    /// the sleeper count already published — closes the check-then-park
    /// race against `notify`).
    fn park_unless(&self, should_return: impl Fn() -> bool) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = self.sleep_mutex.lock().unwrap();
        if !should_return() {
            let _ = self.sleep_cv.wait_timeout(guard, PARK_TIMEOUT).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Work-steals until `latch` trips. Both workers *and* external
    /// joining threads help execute queued jobs while they wait.
    pub(crate) fn wait_until(&self, latch: &Latch) {
        let mut spins = 0u32;
        while !latch.probe() {
            if let Some(job) = self.find_work() {
                unsafe { job.execute() };
                self.notify();
                spins = 0;
            } else if spins < 64 {
                spins += 1;
                std::thread::yield_now();
            } else {
                self.park_unless(|| latch.probe());
            }
        }
    }

    /// Two-sided fork-join on this registry. The *second* closure is
    /// published for stealing (FIFO end — stolen first); the first runs
    /// inline; the second is reclaimed inline if nobody stole it.
    pub(crate) fn join<A, B, RA, RB>(self: &Arc<Self>, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let job_b = StackJob::new(b);
        // SAFETY: job_b outlives every path below — each either runs the
        // job inline or waits for its latch before returning/unwinding.
        unsafe { self.push(job_b.as_job_ref()) };
        let ra = panic::catch_unwind(AssertUnwindSafe(a));
        match self.pop_local() {
            // Reclaimed: by LIFO discipline the top of our deque is
            // necessarily job_b (every job pushed during `a` was popped
            // or stolen before its enclosing join returned). The pointer
            // check makes a violation of that invariant loud-but-sound:
            // the foreign job still runs, and we fall back to waiting.
            Some(job) => {
                let is_ours = std::ptr::eq(job.data, &job_b as *const _ as *const ());
                debug_assert!(is_ours, "LIFO reclaim popped a foreign job");
                unsafe { job.execute() };
                self.notify();
                if !is_ours {
                    self.wait_until(&job_b.latch);
                }
            }
            // Stolen (or we are an external thread): work while waiting.
            None => self.wait_until(&job_b.latch),
        }
        match ra {
            Ok(ra) => (ra, job_b.into_result()),
            Err(payload) => {
                // `a` panicked: job_b's latch has tripped (both arms
                // above guarantee it), so unwinding is safe.
                panic::resume_unwind(payload);
            }
        }
    }

    pub(crate) fn terminate(&self) {
        self.terminate.store(true, Ordering::Release);
        let _guard = self.sleep_mutex.lock().unwrap();
        self.sleep_cv.notify_all();
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&registry), index))));
    crate::set_current_registry(&registry);
    loop {
        if let Some(job) = registry.find_work() {
            unsafe { job.execute() };
            registry.notify();
        } else if registry.terminate.load(Ordering::Acquire) {
            break;
        } else {
            registry.park_unless(|| registry.terminate.load(Ordering::Acquire));
        }
    }
}

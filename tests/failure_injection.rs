//! Failure-injection tests: corrupted inputs must be *rejected*, malformed
//! inputs must produce typed errors, and embedded obstructions must
//! survive any amount of satisfiable context (the error-detection story of
//! the paper's Section 1.1).

use c1p::matrix::generate::{planted_c1p, PlantedShape};
use c1p::matrix::{noise, tucker, Ensemble, EnsembleError};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn embedded_obstructions_always_rejected() {
    let mut rng = SmallRng::seed_from_u64(404);
    for (name, obs) in tucker::small_obstructions() {
        for offset in [0usize, 13, 40] {
            let total = 60;
            let emb = tucker::embed_obstruction(
                &obs,
                total,
                offset,
                &[(0, 9), (10, 14), (30, 20), (50, 10)],
            );
            assert!(c1p::solve(&emb).is_err(), "{name} embedded at {offset}");
        }
        // also embedded inside an otherwise-busy planted instance
        let (planted, _) = planted_c1p(
            PlantedShape { n_atoms: 60, n_columns: 80, min_len: 2, max_len: 12 },
            &mut rng,
        );
        let mut cols = planted.columns().to_vec();
        cols.extend(obs.columns().iter().map(|c| c.iter().map(|&a| a + 20).collect::<Vec<_>>()));
        let mixed = Ensemble::from_columns(60, cols).unwrap();
        assert!(c1p::solve(&mixed).is_err(), "{name} inside planted context");
    }
}

#[test]
fn chimeric_merges_usually_detected() {
    // the paper's motivating failure: chimeric clones produce two separate
    // coverage regions in one fingerprint; with enough overlap structure
    // the merged library loses consistency
    let mut rng = SmallRng::seed_from_u64(99);
    let mut detected = 0;
    let trials = 50;
    for _ in 0..trials {
        let (ens, _) = planted_c1p(
            PlantedShape { n_atoms: 80, n_columns: 240, min_len: 3, max_len: 10 },
            &mut rng,
        );
        let noisy = noise::chimerize(&ens, 2, &mut rng);
        if c1p::solve(&noisy).is_err() {
            detected += 1;
        }
    }
    assert!(
        detected >= trials * 3 / 5,
        "chimerism detection should usually fire ({detected}/{trials})"
    );
}

#[test]
fn malformed_inputs_are_typed_errors() {
    assert!(matches!(
        Ensemble::from_columns(3, vec![vec![0, 5]]),
        Err(EnsembleError::AtomOutOfRange { .. })
    ));
    assert!(matches!(
        Ensemble::from_columns(3, vec![vec![1, 1]]),
        Err(EnsembleError::DuplicateAtom { .. })
    ));
    // ragged text now reports the offending *line* (the matrix-level
    // RaggedMatrix variant remains for the programmatic from_rows path)
    assert!(matches!(
        c1p::matrix::io::parse_ensemble("10\n1"),
        Err(EnsembleError::Parse { line: 2, .. })
    ));
    assert!(matches!(
        c1p::matrix::Matrix01::from_rows(&[vec![1, 0], vec![1]]),
        Err(EnsembleError::RaggedMatrix { .. })
    ));
    assert!(matches!(c1p::matrix::io::parse_ensemble("1x0"), Err(EnsembleError::Parse { .. })));
    // the binary wire decoder is equally typed
    assert!(matches!(
        c1p::matrix::io::decode_ensemble(b"garbage"),
        Err(EnsembleError::Wire { .. })
    ));
    assert!(matches!(c1p::tutte::decompose(0, &[]), Err(c1p::tutte::DecomposeError::NoAtoms)));
    assert!(matches!(
        c1p::tutte::decompose(4, &[(3, 3)]),
        Err(c1p::tutte::DecomposeError::BadChord { .. })
    ));
}

#[test]
fn rejection_is_stable_under_column_shuffles() {
    // rejection must not depend on column processing order
    let obs = tucker::m_ii(2);
    let mut cols = obs.columns().to_vec();
    for rot in 0..cols.len() {
        cols.rotate_left(1);
        let e = Ensemble::from_columns(obs.n_atoms(), cols.clone()).unwrap();
        assert!(c1p::solve(&e).is_err(), "rotation {rot}");
    }
}

#[test]
fn empty_and_degenerate_inputs() {
    assert_eq!(c1p::solve(&Ensemble::new(0)), Ok(vec![]));
    assert_eq!(c1p::solve(&Ensemble::new(1)), Ok(vec![0]));
    // all-empty columns constrain nothing
    let e = Ensemble::from_columns(4, vec![vec![], vec![], vec![]]).unwrap();
    assert!(c1p::solve(&e).is_ok());
    // single full column
    let f = Ensemble::from_columns(4, vec![vec![0, 1, 2, 3]]).unwrap();
    assert!(c1p::solve(&f).is_ok());
}

//! Executable reproductions of the paper's structural artifacts:
//! Fig. 1 (2-isomorphism), Fig. 2 (the running example), the Section 3.2
//! transform, and the Section 2 propositions, as integration tests over
//! the public API.

use c1p::graph::whitney::{are_2_isomorphic, fig1_pair};
use c1p::graph::MultiGraph;
use c1p::matrix::io::fig2_matrix;
use c1p::matrix::transform::{circular_transform, untransform_order};
use c1p::matrix::verify::{brute_force_circular, brute_force_linear};
use c1p::matrix::{verify_circular, verify_linear, Ensemble};

/// Fig. 1: 2-isomorphic but non-isomorphic graphs.
#[test]
fn fig1_whitney_switch_phenomenon() {
    let (g1, g2, part) = fig1_pair();
    assert!(are_2_isomorphic(&g1, &g2));
    let mut d1 = g1.degrees();
    let mut d2 = g2.degrees();
    d1.sort_unstable();
    d2.sort_unstable();
    assert_ne!(d1, d2, "no isomorphism can exist");
    // the switch really is a 2-separation: both sides share exactly 2 vertices
    assert!(c1p::graph::whitney::shared_vertices(&g1, &part).is_some());
}

/// Fig. 2: the 8×7 running example solves, and the solution matches the
/// structure the paper describes (columns a–g consecutive).
#[test]
fn fig2_running_example_end_to_end() {
    let ens = fig2_matrix();
    let order = c1p::solve(&ens).expect("Fig. 2 is path graphic");
    verify_linear(&ens, &order).unwrap();
    // the paper's partition uses column d (= index 3, {1, 4} here) as a
    // proper-size set in its illustration; any valid order keeps every
    // column contiguous, which verify_linear asserts.
    // Also: the parallel driver and the PQ-tree agree.
    let (par, stats) = c1p::solve_par(&ens);
    assert!(par.is_ok());
    assert!(stats.cost.work > 0);
    assert!(c1p::pqtree::solve(ens.n_atoms(), ens.columns()).is_some());
}

/// Proposition 1: gp-realizations of connected ensembles are 2-connected.
#[test]
fn proposition1_gp_realizations_biconnected() {
    // build the gp-graph of a solved connected ensemble
    let ens =
        Ensemble::from_columns(6, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![1, 2, 3]])
            .unwrap();
    let order = c1p::solve(&ens).unwrap();
    let mut pos = [0u32; 6];
    for (i, &a) in order.iter().enumerate() {
        pos[a as usize] = i as u32;
    }
    let chords: Vec<(u32, u32)> = ens
        .columns()
        .iter()
        .map(|col| {
            let ps: Vec<u32> = col.iter().map(|&a| pos[a as usize]).collect();
            (*ps.iter().min().unwrap(), *ps.iter().max().unwrap() + 1)
        })
        .collect();
    let g = MultiGraph::gp_graph(6, &chords);
    assert!(g.is_biconnected(), "Proposition 1");
}

/// Section 3.2 / Tucker [19]: the complement transform preserves
/// realizability (C1P ⇔ circular-ones of the transform), checked on
/// random instances both ways.
#[test]
fn transform_theorem_on_solver_outputs() {
    for seed in 0..30u64 {
        // pseudo-random small ensembles
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
        let mut next = |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        let n = 4 + next(4);
        let m = 1 + next(4);
        let cols: Vec<Vec<u32>> = (0..m)
            .map(|_| {
                let mask = 1 + next((1 << n) - 1);
                (0..n as u32).filter(|&a| mask >> a & 1 == 1).collect()
            })
            .collect();
        let ens = Ensemble::from_columns(n, cols).unwrap();
        let t = circular_transform(&ens, (n + 1) / 3);
        let lin = brute_force_linear(&ens).is_some();
        let circ = brute_force_circular(&t.ensemble).is_some();
        assert_eq!(lin, circ, "transform theorem (seed {seed})");
        if let Some(cyc) = brute_force_circular(&t.ensemble) {
            let back = untransform_order(&cyc, t.r);
            verify_linear(&ens, &back).expect("cutting at r recovers a linear witness");
        }
    }
}

/// The circular-ones solver matches the cyclic brute force on small
/// inputs.
#[test]
fn circular_solver_vs_brute_force() {
    for code in 0..2000u64 {
        let mut state = code;
        let mut next = |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        let n = 4 + next(3);
        let m = 1 + next(3);
        let cols: Vec<Vec<u32>> = (0..m)
            .map(|_| {
                let mask = 1 + next((1 << n) - 1);
                (0..n as u32).filter(|&a| mask >> a & 1 == 1).collect()
            })
            .collect();
        let ens = Ensemble::from_columns(n, cols).unwrap();
        let got = c1p::solve_circular(&ens);
        let expect = brute_force_circular(&ens).is_some();
        assert_eq!(got.is_some(), expect, "circular mismatch:\n{}", ens.to_matrix());
        if let Some(o) = got {
            verify_circular(&ens, &o).unwrap();
        }
    }
}

/// All Tucker obstruction families are rejected by every solver.
#[test]
fn tucker_obstructions_rejected_by_all_solvers() {
    for (name, ens) in c1p::matrix::tucker::small_obstructions() {
        assert!(c1p::solve(&ens).is_err(), "{name} vs D&C");
        assert!(c1p::solve_par(&ens).0.is_err(), "{name} vs parallel D&C");
        assert_eq!(c1p::pqtree::solve(ens.n_atoms(), ens.columns()), None, "{name} vs PQ-tree");
    }
}

//! Property-based tests (proptest) over the full pipeline: the three
//! solvers agree everywhere, witnesses always verify, planted instances
//! are always accepted, and the structural substrates keep their
//! invariants under random inputs.

use c1p::matrix::verify::brute_force_linear;
use c1p::matrix::{verify_linear, Ensemble};
use proptest::prelude::*;

/// Random ensemble strategy: n atoms, up to m columns as bitmasks.
fn ensembles(max_n: usize, max_m: usize) -> impl Strategy<Value = Ensemble> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec(1u64..(1 << n), 0..=max_m).prop_map(move |masks| {
            let cols: Vec<Vec<u32>> = masks
                .iter()
                .map(|&mask| (0..n as u32).filter(|&a| mask >> a & 1 == 1).collect())
                .collect();
            Ensemble::from_columns(n, cols).unwrap()
        })
    })
}

/// Planted-C1P strategy: intervals in a scrambled hidden order.
fn planted(max_n: usize) -> impl Strategy<Value = Ensemble> {
    (3..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        c1p::matrix::generate::planted_c1p(
            c1p::matrix::generate::PlantedShape {
                n_atoms: n,
                n_columns: 2 * n,
                min_len: 2,
                max_len: (n / 2).max(2),
            },
            &mut rng,
        )
        .0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// D&C and PQ-tree agree on every random instance, and any witness
    /// verifies.
    #[test]
    fn solvers_agree(ens in ensembles(9, 6)) {
        let dc = c1p::solve(&ens);
        let pq = c1p::pqtree::solve(ens.n_atoms(), ens.columns());
        prop_assert_eq!(dc.is_some(), pq.is_some());
        if let Some(o) = &dc {
            prop_assert!(verify_linear(&ens, o).is_ok());
        }
        if ens.n_atoms() <= 7 {
            prop_assert_eq!(dc.is_some(), brute_force_linear(&ens).is_some());
        }
    }

    /// Planted instances are always accepted — the completeness property
    /// the alignment machinery must provide.
    #[test]
    fn planted_always_accepted(ens in planted(120)) {
        let order = c1p::solve(&ens);
        prop_assert!(order.is_some());
        prop_assert!(verify_linear(&ens, &order.unwrap()).is_ok());
    }

    /// The parallel driver agrees with the sequential one.
    #[test]
    fn parallel_matches_sequential(ens in ensembles(10, 6)) {
        let seq = c1p::solve(&ens).is_some();
        let (par, _) = c1p::solve_par(&ens);
        prop_assert_eq!(seq, par.is_some());
    }

    /// Atom relabeling never changes the verdict (C1P is permutation
    /// invariant).
    #[test]
    fn verdict_is_permutation_invariant(ens in ensembles(8, 5), seed in any::<u64>()) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let perm = c1p::matrix::generate::random_permutation(ens.n_atoms(), &mut rng);
        let relabeled = ens.permute_atoms(&perm);
        prop_assert_eq!(c1p::solve(&ens).is_some(), c1p::solve(&relabeled).is_some());
    }

    /// Duplicating a column never changes the verdict.
    #[test]
    fn duplicate_columns_are_harmless(ens in ensembles(8, 4), pick in any::<prop::sample::Index>()) {
        let before = c1p::solve(&ens).is_some();
        if ens.n_columns() > 0 {
            let mut cols = ens.columns().to_vec();
            let dup = cols[pick.index(cols.len())].clone();
            cols.push(dup);
            let doubled = Ensemble::from_columns(ens.n_atoms(), cols).unwrap();
            prop_assert_eq!(before, c1p::solve(&doubled).is_some());
        }
    }

    /// The Tutte decomposition of arbitrary valid chord sets always
    /// validates and composes back to the identity.
    #[test]
    fn decomposition_invariants(n in 1usize..40, raw in proptest::collection::vec((0u32..40, 1u32..40), 0..25)) {
        let chords: Vec<(u32, u32)> = raw
            .iter()
            .filter_map(|&(a, len)| {
                let lo = a % n as u32;
                let hi = (lo + 1 + len % n as u32).min(n as u32);
                (lo < hi).then_some((lo, hi))
            })
            .collect();
        let tree = c1p::tutte::decompose(n, &chords).unwrap();
        tree.validate();
        let order = c1p::tutte::compose(&tree, &c1p::tutte::Arrangement::identity(&tree));
        prop_assert_eq!(order, (0..n as u32).collect::<Vec<_>>());
    }

    /// Interlacement classes: the linear-time sweep equals the quadratic
    /// reference.
    #[test]
    fn interlacement_sweep_equals_naive(raw in proptest::collection::vec((0u32..30, 1u32..30), 0..20)) {
        let mut spans: Vec<(u32, u32)> =
            raw.iter().map(|&(lo, len)| (lo, lo + len)).collect();
        spans.sort_unstable();
        spans.dedup();
        let norm = |mut cs: Vec<Vec<u32>>| {
            for c in &mut cs { c.sort_unstable(); }
            cs.sort();
            cs
        };
        prop_assert_eq!(
            norm(c1p::tutte::interlace::classes_naive(&spans)),
            norm(c1p::tutte::interlace::classes_sweep(&spans))
        );
    }
}

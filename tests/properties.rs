//! Property-based tests over the full pipeline: the three solvers agree
//! everywhere, witnesses always verify, planted instances are always
//! accepted, and the structural substrates keep their invariants under
//! random inputs.
//!
//! The offline build environment cannot fetch proptest, so the
//! strategies are expressed as deterministic seeded-random case loops
//! (300 cases per property, matching the old `ProptestConfig`); every
//! failure message includes the case's seed so it replays exactly.

use c1p::matrix::verify::brute_force_linear;
use c1p::matrix::{verify_linear, Ensemble};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

const CASES: u64 = 300;

/// Random ensemble: `2..=max_n` atoms, up to `max_m` bitmask columns.
fn random_ensemble(rng: &mut SmallRng, max_n: usize, max_m: usize) -> Ensemble {
    let n = rng.random_range(2..=max_n);
    let m = rng.random_range(0..=max_m);
    let cols: Vec<Vec<u32>> = (0..m)
        .map(|_| {
            let mask = rng.random_range(1u64..(1 << n));
            (0..n as u32).filter(|&a| mask >> a & 1 == 1).collect()
        })
        .collect();
    Ensemble::from_columns(n, cols).unwrap()
}

/// Planted-C1P instance: intervals in a scrambled hidden order.
fn random_planted(rng: &mut SmallRng, max_n: usize) -> Ensemble {
    let n = rng.random_range(3..=max_n);
    c1p::matrix::generate::planted_c1p(
        c1p::matrix::generate::PlantedShape {
            n_atoms: n,
            n_columns: 2 * n,
            min_len: 2,
            max_len: (n / 2).max(2),
        },
        rng,
    )
    .0
}

/// D&C and PQ-tree agree on every random instance, and any witness
/// verifies.
#[test]
fn solvers_agree() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ens = random_ensemble(&mut rng, 9, 6);
        let dc = c1p::solve(&ens);
        let pq = c1p::pqtree::solve(ens.n_atoms(), ens.columns());
        assert_eq!(dc.is_ok(), pq.is_some(), "seed {seed}: dc vs pq on\n{}", ens.to_matrix());
        if let Ok(o) = &dc {
            assert!(verify_linear(&ens, o).is_ok(), "seed {seed}");
        }
        if ens.n_atoms() <= 7 {
            assert_eq!(dc.is_ok(), brute_force_linear(&ens).is_some(), "seed {seed}");
        }
    }
}

/// Planted instances are always accepted — the completeness property
/// the alignment machinery must provide.
#[test]
fn planted_always_accepted() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9A17 ^ seed);
        let ens = random_planted(&mut rng, 120);
        let order = c1p::solve(&ens);
        assert!(order.is_ok(), "seed {seed}: planted instance rejected");
        assert!(verify_linear(&ens, &order.unwrap()).is_ok(), "seed {seed}");
    }
}

/// The parallel driver agrees with the sequential one.
#[test]
fn parallel_matches_sequential() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xBEEF ^ seed);
        let ens = random_ensemble(&mut rng, 10, 6);
        let seq = c1p::solve(&ens).is_ok();
        let (par, _) = c1p::solve_par(&ens);
        assert_eq!(seq, par.is_ok(), "seed {seed} on\n{}", ens.to_matrix());
    }
}

/// Atom relabeling never changes the verdict (C1P is permutation
/// invariant).
#[test]
fn verdict_is_permutation_invariant() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xCAFE ^ seed);
        let ens = random_ensemble(&mut rng, 8, 5);
        let perm = c1p::matrix::generate::random_permutation(ens.n_atoms(), &mut rng);
        let relabeled = ens.permute_atoms(&perm);
        assert_eq!(
            c1p::solve(&ens).is_ok(),
            c1p::solve(&relabeled).is_ok(),
            "seed {seed} on\n{}",
            ens.to_matrix()
        );
    }
}

/// Duplicating a column never changes the verdict.
#[test]
fn duplicate_columns_are_harmless() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD0D0 ^ seed);
        let ens = random_ensemble(&mut rng, 8, 4);
        let before = c1p::solve(&ens).is_ok();
        if ens.n_columns() > 0 {
            let mut cols = ens.columns().to_vec();
            let dup = cols[rng.random_range(0..cols.len())].clone();
            cols.push(dup);
            let doubled = Ensemble::from_columns(ens.n_atoms(), cols).unwrap();
            assert_eq!(before, c1p::solve(&doubled).is_ok(), "seed {seed}");
        }
    }
}

/// The Tutte decomposition of arbitrary valid chord sets always
/// validates and composes back to the identity.
#[test]
fn decomposition_invariants() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF00D ^ seed);
        let n = rng.random_range(1usize..40);
        let m = rng.random_range(0usize..25);
        let chords: Vec<(u32, u32)> = (0..m)
            .filter_map(|_| {
                let a = rng.random_range(0u32..40);
                let len = rng.random_range(1u32..40);
                let lo = a % n as u32;
                let hi = (lo + 1 + len % n as u32).min(n as u32);
                (lo < hi).then_some((lo, hi))
            })
            .collect();
        let tree = c1p::tutte::decompose(n, &chords).unwrap();
        tree.validate();
        let order = c1p::tutte::compose(&tree, &c1p::tutte::Arrangement::identity(&tree));
        assert_eq!(order, (0..n as u32).collect::<Vec<_>>(), "seed {seed}");
    }
}

/// Interlacement classes: the linear-time sweep equals the quadratic
/// reference.
#[test]
fn interlacement_sweep_equals_naive() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xABBA ^ seed);
        let m = rng.random_range(0usize..20);
        let mut spans: Vec<(u32, u32)> = (0..m)
            .map(|_| {
                let lo = rng.random_range(0u32..30);
                let len = rng.random_range(1u32..30);
                (lo, lo + len)
            })
            .collect();
        spans.sort_unstable();
        spans.dedup();
        let norm = |mut cs: Vec<Vec<u32>>| {
            for c in &mut cs {
                c.sort_unstable();
            }
            cs.sort();
            cs
        };
        assert_eq!(
            norm(c1p::tutte::interlace::classes_naive(&spans)),
            norm(c1p::tutte::interlace::classes_sweep(&spans)),
            "seed {seed}"
        );
    }
}
